"""Concurrency, differential and protocol tests for the serving tier.

The load-bearing claims:

* **single-flight** — N concurrent identical queries run the engine
  once (monitored through a counting engine stub);
* **version-keyed invalidation** — ``/update`` bumps the version and
  every subsequent read reflects the new state, with no cache scan;
* **byte-identity** — every ``/query`` and ``/batch`` response equals
  encoding an in-process ``evaluate``/``evaluate_aggregate`` result
  with the same codec, byte for byte, on 30 seeded databases and under
  concurrent load;
* **leak safety** — sessions dropped without ``close()`` do not strand
  worker pools (via ``weakref.finalize``, never ``__del__``).
"""

import gc
import json
import threading
import time
from contextlib import contextmanager
from http.client import HTTPConnection

import pytest

from repro.aggregate.evaluate import evaluate_aggregate
from repro.db.generators import random_database
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate
from repro.engine.sharded import ShardedExecutor
from repro.errors import EvaluationError
from repro.query.aggregate import AggregateQuery
from repro.query.parser import parse_program, parse_query
from repro.server.app import (
    ServerState,
    canonical_json,
    encode_results,
    make_server,
)
from repro.server.cache import ResultCache
from repro.session import QuerySession

#: Leak safety is a headline claim of this suite: an unclosed socket,
#: pool, or shared-memory segment must fail the test, not just warn.
pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

JOIN = "ans(x, z) :- R(x, y), S(y, z)"
UNION = "ans(x) :- R(x, y)\nans(x) :- S(x, y)"
AGG_COUNT = "agg(x, count(*)) :- R(x, y)"
AGG_SUM = "agg(sum(z)) :- R(x, y), S(y, z)"


def small_db():
    return AnnotatedDatabase.from_rows(
        {"R": [("a", "b"), ("b", "c"), ("c", "a")], "S": [("b", 1), ("c", 2)]}
    )


class Client:
    """A tiny JSON HTTP client over :mod:`http.client`."""

    def __init__(self, server):
        self.host, self.port = server.server_address[:2]

    def request(self, method, path, body=None):
        conn = HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request(
                method, path, body=None if body is None else json.dumps(body)
            )
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def post(self, path, body):
        return self.request("POST", path, body)

    def get(self, path):
        return self.request("GET", path)

    def json(self, method, path, body=None):
        status, raw = self.request(method, path, body)
        return status, json.loads(raw)


@contextmanager
def serve(db, **kwargs):
    server = make_server(db, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, Client(server)
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


def expected_query_body(text, db, version):
    """What the server must answer: the shared codec over a direct,
    in-process evaluation — the differential oracle."""
    query = parse_query(text)
    aggregate = isinstance(query, AggregateQuery)
    direct = (
        evaluate_aggregate(query, db) if aggregate else evaluate(query, db)
    )
    return canonical_json(
        {"version": version, **encode_results(direct, aggregate)}
    )


# ----------------------------------------------------------------------
# The cache itself
# ----------------------------------------------------------------------
class TestResultCache:
    def test_get_or_compute_caches(self):
        cache = ResultCache()
        assert cache.get_or_compute("k", lambda: ("v", True)) == "v"
        assert cache.get_or_compute("k", lambda: ("other", True)) == "v"
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_uncacheable_results_are_returned_but_not_stored(self):
        cache = ResultCache()
        assert cache.get_or_compute("k", lambda: ("fresh", False)) == "fresh"
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # bump a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_clear_resets(self):
        cache = ResultCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_cached_none_is_a_hit_not_a_permanent_miss(self):
        cache = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return None, True

        assert cache.get_or_compute("k", compute) is None
        assert cache.get_or_compute("k", compute) is None
        assert len(calls) == 1  # the stored None hits; no recompute
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["size"]) == (1, 1, 1)
        cache.put("n", None)
        assert cache.get("n") is None
        assert cache.stats()["hits"] == 2

    def test_reprs_are_cheap_summaries(self):
        cache = ResultCache()
        cache.put("a", 1)
        assert "ResultCache" in repr(cache) and "1/256" in repr(cache)
        with ServerState(small_db()) as state:
            assert "hashjoin" in repr(state) and "session" in repr(state)

    def test_single_flight_computes_once(self):
        cache = ResultCache()
        calls = []
        started = threading.Event()
        release = threading.Event()

        def compute():
            calls.append(1)
            started.set()
            release.wait(10)
            return "value", True

        results = []

        def worker():
            results.append(cache.get_or_compute("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        assert started.wait(10)
        release.set()
        for thread in threads:
            thread.join(10)
        assert len(calls) == 1  # the engine ran once for 8 callers
        assert results == ["value"] * 8
        stats = cache.stats()
        assert stats["dedup_hits"] + stats["hits"] == 7
        assert stats["misses"] == 1

    def test_store_crash_still_wakes_waiters(self):
        """Satellite fix: a leader that dies *after* computing (here the
        LRU store step explodes) must still wake every waiter — the
        event is set in a ``finally`` — or they block forever."""
        cache = ResultCache()
        started = threading.Event()
        release = threading.Event()

        def compute():
            started.set()
            release.wait(10)
            return "value", True

        cache._store = lambda key, value: (_ for _ in ()).throw(
            RuntimeError("store exploded")
        )
        leader_errors = []
        waiter_results = []

        def leader():
            try:
                cache.get_or_compute("k", compute)
            except RuntimeError as error:
                leader_errors.append(str(error))

        def waiter():
            waiter_results.append(
                cache.get_or_compute("k", lambda: ("never run", True))
            )

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert started.wait(10)
        waiters = [threading.Thread(target=waiter) for _ in range(3)]
        for thread in waiters:
            thread.start()
        deadline = time.time() + 10
        while time.time() < deadline:
            if cache.stats()["single_flight_waiters"] >= 3:
                break
            time.sleep(0.01)
        release.set()
        leader_thread.join(10)
        for thread in waiters:
            thread.join(10)  # the satellite bug: these hung forever
        assert leader_errors == ["store exploded"]
        # The waiters got the computed value; the broken store kept it
        # out of the cache and the key is not poisoned.
        assert waiter_results == ["value"] * 3
        del cache._store  # restore the class method
        assert cache.get("k") is None
        assert cache.get_or_compute("k", lambda: ("ok", True)) == "ok"

    def test_leader_failure_propagates_and_caches_nothing(self):
        cache = ResultCache()
        started = threading.Event()
        release = threading.Event()
        outcomes = []

        def compute():
            started.set()
            release.wait(10)
            raise RuntimeError("engine exploded")

        def worker():
            try:
                cache.get_or_compute("k", compute)
            except RuntimeError as error:
                outcomes.append(str(error))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        threads[0].start()
        assert started.wait(10)
        for thread in threads[1:]:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(10)
        assert outcomes == ["engine exploded"] * 4
        assert cache.get("k") is None
        # The key is not poisoned: the next computation succeeds.
        assert cache.get_or_compute("k", lambda: ("ok", True)) == "ok"


# ----------------------------------------------------------------------
# Endpoint protocol (malformed requests, status codes)
# ----------------------------------------------------------------------
class TestProtocol:
    """Every protocol test runs against BOTH serving tiers: the error
    contract (message strings included) is part of the byte-identity
    promise, so the async front end answers exactly like the threaded
    one."""

    @pytest.fixture(scope="class", params=["threaded", "async"])
    def served(self, request):
        with serve(small_db(), server_mode=request.param) as pair:
            yield pair

    def test_query_ok(self, served):
        _server, client = served
        status, payload = client.json("POST", "/query", {"query": JOIN})
        assert status == 200
        assert payload["kind"] == "polynomial"
        assert payload["results"]

    def test_missing_body_is_400(self, served):
        _server, client = served
        status, payload = client.json("POST", "/query")
        assert status == 400
        assert "body" in payload["error"]

    def test_invalid_json_is_400(self, served):
        _server, client = served
        conn = HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request("POST", "/query", body="{not json")
            response = conn.getresponse()
            assert response.status == 400
            assert b"invalid JSON" in response.read()
        finally:
            conn.close()

    def test_wrong_query_type_is_400(self, served):
        _server, client = served
        for body in ({}, {"query": 7}, [JOIN]):
            status, payload = client.json("POST", "/query", body)
            assert status == 400, payload

    def test_parse_error_is_400(self, served):
        _server, client = served
        status, payload = client.json("POST", "/query", {"query": "not a rule"})
        assert status == 400
        assert payload["error"]

    def test_wrong_batch_type_is_400(self, served):
        _server, client = served
        for body in ({}, {"queries": JOIN}, {"queries": [JOIN, 3]}):
            status, _payload = client.json("POST", "/batch", body)
            assert status == 400

    def test_bad_update_batches_are_400(self, served):
        _server, client = served
        for body in (
            {"upsert": {}},  # unknown section
            {"insert": {"R": [{"no_row": True}]}},
            {"retag": {"R": [["a", "b"]]}},
            {"delete": {"R": [["zz", "zz"]]}},  # absent tuple
            42,
        ):
            status, payload = client.json("POST", "/update", body)
            assert status == 400, payload

    def test_method_mismatches_are_405(self, served):
        _server, client = served
        assert client.get("/query")[0] == 405
        assert client.get("/batch")[0] == 405
        assert client.get("/update")[0] == 405
        assert client.post("/stats", {})[0] == 405
        assert client.post("/views/V", {})[0] == 405

    def test_unknown_paths_are_404(self, served):
        _server, client = served
        assert client.get("/nope")[0] == 404
        assert client.post("/nope", {})[0] == 404

    def test_views_without_registry_is_404(self, served):
        _server, client = served
        status, payload = client.json("GET", "/views/V")
        assert status == 404
        assert "program" in payload["error"]

    def test_stats_shape(self, served):
        _server, client = served
        status, payload = client.json("GET", "/stats")
        assert status == 200
        assert payload["mode"] == "session"
        assert payload["engine"] == "hashjoin"
        assert {"hits", "misses", "hit_rate", "inflight"} <= set(payload["cache"])
        assert {"symbols", "monomials", "products"} <= set(payload["intern"])
        assert payload["db_version"] >= 0
        assert payload["requests"]["active"] >= 1  # this very request

    def test_unknown_engine_rejected(self):
        with pytest.raises(EvaluationError):
            ServerState(small_db(), engine="warp")

    def test_invalid_content_length_is_400_and_closes(self, served):
        """An unparseable Content-Length means the body cannot be
        drained: the response is a clean 400 that closes the socket."""
        _server, client = served
        import socket

        with socket.create_connection((client.host, client.port), timeout=30) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\n"
                b"Host: test\r\nContent-Length: 12abc\r\n\r\n"
            )
            sock.settimeout(30)
            chunks = b""
            while True:
                data = sock.recv(4096)
                if not data:
                    break  # server closed the undrainable connection
                chunks += data
            assert b"400" in chunks.split(b"\r\n", 1)[0]
            assert b"invalid Content-Length" in chunks

    def test_keep_alive_survives_rejected_posts(self, served):
        """A 405/404/400 response must drain the request body, or the
        next request on the same keep-alive connection parses garbage."""
        _server, client = served
        conn = HTTPConnection(client.host, client.port, timeout=30)
        try:
            # POST with a body to a GET-only path: 405, body unread
            # unless the handler drains it.
            for path, expected in (
                ("/stats", 405),
                ("/nowhere", 404),
                ("/query", 400),
            ):
                conn.request("POST", path, body=json.dumps({"pad": "x" * 256}))
                response = conn.getresponse()
                assert response.status == expected
                response.read()
                # The SAME connection must still serve the next request.
                conn.request("GET", "/stats")
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["engine"] == "hashjoin"
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Liveness: slow clients must not pin workers, crashes must not leak
# ----------------------------------------------------------------------
class TestSlowClients:
    """Regression for the bug this PR fixes: a client that sends
    headers promising a body and then stalls used to pin a worker
    thread forever (no socket timeout).  Both tiers now enforce a
    request deadline."""

    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_stalled_body_gets_408_and_frees_the_worker(self, mode):
        import socket

        with serve(
            small_db(), server_mode=mode, request_timeout=0.5
        ) as (server, client):
            with socket.create_connection(
                (client.host, client.port), timeout=30
            ) as sock:
                sock.sendall(
                    b"POST /query HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 100\r\n\r\n"
                    b'{"partial'  # 91 promised bytes never arrive
                )
                sock.settimeout(30)
                chunks = b""
                while True:
                    data = sock.recv(4096)
                    if not data:
                        break  # the undrainable connection was closed
                    chunks += data
            assert b"408" in chunks.split(b"\r\n", 1)[0], (mode, chunks)
            assert b"timed out reading the request body" in chunks
            # The worker is free again: the server still serves.
            assert client.get("/stats")[0] == 200

    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_handler_crash_does_not_leak_inflight_counter(self, mode):
        """Satellite fix: ``request_started``/``request_finished`` pair
        in a try/finally, so induced handler failures cannot ratchet
        the /stats ``active`` gauge upward forever."""
        with serve(small_db(), server_mode=mode) as (server, client):
            state = server.state

            def boom(*_args, **_kwargs):
                raise RuntimeError("induced handler failure")

            state.prepare_query = boom  # crashes /query in both tiers
            for _ in range(3):
                status, payload = client.json(
                    "POST", "/query", {"query": JOIN}
                )
                assert status == 500
                assert "induced handler failure" in payload["error"]
            deadline = time.time() + 5
            while time.time() < deadline:
                if state.stats()["requests"]["active"] == 0:
                    break
                time.sleep(0.01)
            assert state.stats()["requests"]["active"] == 0
            # And the server still works once the fault is removed.
            del state.prepare_query
            assert client.post("/query", {"query": JOIN})[0] == 200


# ----------------------------------------------------------------------
# Version-keyed invalidation
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_update_invalidates_without_scanning(self):
        with serve(small_db()) as (server, client):
            status, first = client.post("/query", {"query": "ans(x) :- R(x, x)"})
            assert status == 200
            status, again = client.post("/query", {"query": "ans(x) :- R(x, x)"})
            assert status == 200
            assert again == first  # warm hit, byte-identical
            assert server.state.cache.stats()["hits"] == 1

            status, _ = client.post(
                "/update", {"insert": {"R": [["a", "a"]]}}
            )
            assert status == 200
            status, fresh = client.json(
                "POST", "/query", {"query": "ans(x) :- R(x, x)"}
            )
            assert status == 200
            assert [entry["tuple"] for entry in fresh["results"]] == [["a"]]
            # The stale entry was never touched: invalidation happened
            # purely by the version moving on.
            assert server.state.cache.stats()["evictions"] == 0

    def test_update_applies_deletes_and_retags(self):
        with serve(small_db()) as (server, client):
            status, payload = client.json(
                "POST",
                "/update",
                {
                    "delete": {"R": [["c", "a"]]},
                    "retag": {"S": [{"row": ["b", 1], "annotation": "t9"}]},
                },
            )
            assert status == 200
            assert payload["changes"] == 2
            status, result = client.json("POST", "/query", {"query": JOIN})
            assert status == 200
            provenances = {
                json.dumps(entry["provenance"], sort_keys=True)
                for entry in result["results"]
            }
            assert any("t9" in blob for blob in provenances)
            # S(b, 1) carried s4 before the retag; nothing mentions it now.
            assert not any('"s4"' in blob for blob in provenances)

    def test_invalid_multi_batch_update_applies_nothing(self):
        """All batches are validated up front: a bad later batch must
        not leave earlier batches half-applied behind a 400."""
        with serve(small_db()) as (server, client):
            before = server.state.session.db_version()
            status, payload = client.json(
                "POST",
                "/update",
                [
                    {"insert": {"R": [["x", "y"]]}},  # valid on its own
                    {"delete": {"R": [["nope", "nope"]]}},  # absent tuple
                ],
            )
            assert status == 400
            assert "absent" in payload["error"]
            assert server.state.session.db_version() == before  # untouched
            status, result = client.json(
                "POST", "/query", {"query": "ans(x) :- R(x, y)"}
            )
            assert ["x"] not in [e["tuple"] for e in result["results"]]

    def test_later_batch_may_delete_what_an_earlier_one_inserted(self):
        with serve(small_db()) as (_server, client):
            status, payload = client.json(
                "POST",
                "/update",
                [
                    {"insert": {"R": [{"row": ["x", "y"], "annotation": "t1"}]}},
                    {"delete": {"R": [["x", "y"]]}},
                ],
            )
            assert status == 200
            assert payload["changes"] == 2

    def test_registry_views_follow_updates(self):
        program = parse_program(
            "V1(x, z) :- R(x, y), R(y, z)\nV2(x) :- V1(x, x)"
        )
        db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
        with serve(db, program=program) as (server, client):
            registry = server.state.registry
            status, before = client.json("GET", "/views/V2")
            assert status == 200
            assert [e["tuple"] for e in before["results"]] == [["a"], ["b"]]

            status, _ = client.post(
                "/update", {"delete": {"R": [["b", "a"]]}}
            )
            assert status == 200
            status, after = client.json("GET", "/views/V2")
            assert status == 200
            assert after["results"] == []

            # Base expansion composes the layers down to base symbols.
            client.post("/update", {"insert": {"R": [["b", "a"]]}})
            status, base = client.get("/views/V2?base=1")
            assert status == 200
            expected = canonical_json(
                {
                    "version": registry.db_version(),
                    "view": "V2",
                    **encode_results(registry.base_provenance("V2"), False),
                }
            )
            assert base == expected


# ----------------------------------------------------------------------
# Single-flight over HTTP (counting engine stub)
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_identical_queries_run_engine_once(self):
        with serve(small_db()) as (server, client):
            state = server.state
            original = state._session_run
            calls = []
            release = threading.Event()

            def gated(queries):
                calls.append(len(queries))
                release.wait(15)
                return original(queries)

            state._session_run = gated
            outcomes = []

            def fire():
                outcomes.append(client.post("/query", {"query": JOIN}))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                if state.stats()["requests"]["active"] >= 6:
                    break
                time.sleep(0.01)
            release.set()
            for thread in threads:
                thread.join(15)

            assert len(calls) == 1  # six requests, one engine run
            assert {status for status, _ in outcomes} == {200}
            assert len({body for _, body in outcomes}) == 1
            stats = state.cache.stats()
            assert stats["misses"] == 1
            assert stats["dedup_hits"] + stats["hits"] == 5


# ----------------------------------------------------------------------
# Differential: served bytes == in-process evaluation (30 seeded dbs)
# ----------------------------------------------------------------------
class TestDifferential:
    TEXTS = [JOIN, UNION, AGG_COUNT, AGG_SUM]

    @pytest.mark.parametrize("seed", range(30))
    def test_query_and_batch_byte_identical(self, seed):
        """Both serving tiers against the oracle — and each other."""
        db = random_database(
            {"R": 2, "S": 2}, list(range(8)), n_facts=40, seed=seed
        )
        served_bodies = {}
        for mode in ("threaded", "async"):
            with serve(db, server_mode=mode) as (server, client):
                version = server.state.session.db_version()
                expected = {
                    text: expected_query_body(text, db, version)
                    for text in self.TEXTS
                }
                bodies = {}
                for text in self.TEXTS:
                    status, body = client.post("/query", {"query": text})
                    assert status == 200
                    assert body == expected[text], (mode, text)
                    bodies[text] = body
                # /batch embeds the very same per-query payloads.
                status, body = client.post("/batch", {"queries": self.TEXTS})
                assert status == 200
                envelope = {
                    "results": [
                        json.loads(expected[text]) for text in self.TEXTS
                    ]
                }
                assert body == canonical_json(envelope)
                bodies["/batch"] = body
                served_bodies[mode] = bodies
        assert served_bodies["threaded"] == served_bodies["async"]

    def test_batch_mixes_cached_and_fresh(self):
        db = small_db()
        with serve(db) as (server, client):
            client.post("/query", {"query": JOIN})  # prime one entry
            status, body = client.post(
                "/batch", {"queries": [JOIN, UNION, JOIN]}
            )
            assert status == 200
            payload = json.loads(body)
            assert len(payload["results"]) == 3
            assert payload["results"][0] == payload["results"][2]
            stats = server.state.cache.stats()
            assert stats["hits"] >= 1  # the primed entry was reused

    def test_byte_identity_under_concurrent_load(self):
        db = random_database(
            {"R": 2, "S": 2}, list(range(10)), n_facts=120, seed=99
        )
        with serve(db) as (server, client):
            version = server.state.session.db_version()
            expected = {
                text: expected_query_body(text, db, version)
                for text in self.TEXTS
            }
            failures = []

            def worker(offset):
                for index in range(12):
                    text = self.TEXTS[(offset + index) % len(self.TEXTS)]
                    status, body = client.post("/query", {"query": text})
                    if status != 200 or body != expected[text]:
                        failures.append((text, status))

            threads = [
                threading.Thread(target=worker, args=(offset,))
                for offset in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert not failures
            stats = server.state.cache.stats()
            assert stats["hit_rate"] > 0
            assert stats["misses"] <= len(self.TEXTS)
            # The same load must leave sane latency percentiles behind.
            status, payload = client.json("GET", "/stats")
            assert status == 200 and payload["metrics_enabled"]
            latency = payload["latency"]["/query"]
            assert latency["p50"] > 0
            assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_mixed_query_update_load_stays_consistent(self):
        db = small_db()
        with serve(db) as (server, client):
            statuses = []

            def query_worker(offset):
                for index in range(10):
                    text = self.TEXTS[(offset + index) % len(self.TEXTS)]
                    statuses.append(client.post("/query", {"query": text})[0])

            def update_worker(tag):
                for index in range(5):
                    body = {
                        "insert": {
                            "R": [
                                {
                                    "row": ["u{}".format(tag), "v{}".format(index)],
                                    "annotation": "u{}_{}".format(tag, index),
                                }
                            ]
                        }
                    }
                    statuses.append(client.post("/update", body)[0])

            threads = [
                threading.Thread(target=query_worker, args=(offset,))
                for offset in range(6)
            ] + [
                threading.Thread(target=update_worker, args=(tag,))
                for tag in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert set(statuses) == {200}
            # Steady state: the served answer matches a direct
            # evaluation over the final database.
            version = server.state.session.db_version()
            for text in self.TEXTS:
                status, body = client.post("/query", {"query": text})
                assert status == 200
                assert body == expected_query_body(text, db, version)

    def test_sharded_engine_serves_identical_bytes(self):
        db = random_database(
            {"R": 2, "S": 2}, list(range(8)), n_facts=60, seed=7
        )
        with serve(db, engine="sharded", shards=2, workers=2) as (
            server,
            client,
        ):
            version = server.state.session.db_version()
            for text in self.TEXTS:
                status, body = client.post("/query", {"query": text})
                assert status == 200
                assert body == expected_query_body(text, db, version)


# ----------------------------------------------------------------------
# Leaked sessions must not strand worker pools (satellite fix)
# ----------------------------------------------------------------------
class TestLeakedSessions:
    def test_no_del_methods_involved(self):
        # The cleanup contract is weakref.finalize, never __del__ (which
        # would resurrect objects and stall gc on reference cycles).
        assert not hasattr(ShardedExecutor, "__del__")
        assert not hasattr(QuerySession, "__del__")

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_leaked_session_releases_its_pool(self, mode):
        db = small_db()
        session = QuerySession(
            db, engine="sharded", shards=2, workers=2, mode=mode
        )
        session.evaluate(parse_query("ans(x, z) :- R(x, y), R(y, z)"))
        executor = session.executor
        finalizer = executor._finalizer
        assert finalizer is not None and finalizer.alive
        # Leak the session: no close(), no context manager.
        del session, executor
        gc.collect()
        assert not finalizer.alive  # the pool was shut down on collection

    def test_explicit_close_disarms_the_finalizer(self):
        db = small_db()
        with QuerySession(
            db, engine="sharded", shards=2, workers=2, mode="thread"
        ) as session:
            session.evaluate(parse_query("ans(x) :- R(x, y)"))
            finalizer = session.executor._finalizer
            assert finalizer.alive
        assert not finalizer.alive


# ----------------------------------------------------------------------
# Observability: /metrics, traced queries, request logging
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_exposition_parses_and_counters_are_monotone(self):
        db = small_db()
        with serve(db) as (server, client):
            def query_counter():
                status, raw = client.get("/metrics")
                assert status == 200
                samples = {}
                for line in raw.decode("utf-8").splitlines():
                    if not line or line.startswith("#"):
                        continue
                    name, _space, value = line.rpartition(" ")
                    assert name, line
                    samples[name] = float(value)  # every sample parses
                return samples.get(
                    'repro_http_requests_total{endpoint="/query",'
                    'method="POST",status="200"}',
                    0.0,
                )

            assert query_counter() == 0
            client.post("/query", {"query": JOIN})
            first = query_counter()
            assert first == 1
            client.post("/query", {"query": JOIN})  # cache hit still counts
            assert query_counter() == first + 1

    def test_exposition_content_type(self):
        from repro.obs.metrics import EXPOSITION_CONTENT_TYPE

        db = small_db()
        with serve(db) as (server, client):
            conn = HTTPConnection(client.host, client.port, timeout=30)
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                assert (
                    response.getheader("Content-Type")
                    == EXPOSITION_CONTENT_TYPE
                )
            finally:
                conn.close()

    def test_latency_histogram_appears_after_requests(self):
        db = small_db()
        with serve(db) as (server, client):
            client.post("/query", {"query": JOIN})
            _status, raw = client.get("/metrics")
            text = raw.decode("utf-8")
            assert "# TYPE repro_http_request_seconds histogram" in text
            assert 'repro_http_request_seconds_bucket{endpoint="/query",le="+Inf"} 1' in text
            assert 'repro_http_request_seconds_count{endpoint="/query"} 1' in text

    def test_unknown_paths_collapse_to_a_bounded_label(self):
        db = small_db()
        with serve(db) as (server, client):
            for path in ("/nope", "/admin", "/views/whatever"):
                client.get(path)
            counter = server.state.metrics.get("repro_http_requests_total")
            endpoints = {key[0] for key in counter.series()}
            assert "other" in endpoints
            assert "/views" in endpoints
            assert "/nope" not in endpoints and "/admin" not in endpoints

    def test_metrics_disabled_answers_404(self):
        db = small_db()
        with serve(db, metrics=False) as (server, client):
            status, payload = client.json("GET", "/metrics")
            assert status == 404
            assert "disabled" in payload["error"]
            # Serving still works and /stats says metrics are off.
            assert client.post("/query", {"query": JOIN})[0] == 200
            _status, stats = client.json("GET", "/stats")
            assert stats["metrics_enabled"] is False
            assert "latency" not in stats

    def test_stats_reports_single_flight_waiters(self):
        db = small_db()
        with serve(db) as (server, client):
            _status, stats = client.json("GET", "/stats")
            assert stats["cache"]["single_flight_waiters"] == 0


class TestTracedQueries:
    def test_query_trace_flag_wraps_result_with_span_tree(self):
        from repro.obs.trace import tree_stage_names

        db = small_db()
        with serve(db) as (server, client):
            version = server.state.session.db_version()
            status, envelope = client.json(
                "POST", "/query?trace=1", {"query": JOIN}
            )
            assert status == 200
            assert sorted(envelope) == ["result", "trace"]
            expected = json.loads(expected_query_body(JOIN, db, version))
            assert envelope["result"] == expected
            names = tree_stage_names(envelope["trace"])
            for want in ("parse", "plan", "join", "merge"):
                assert want in names, (want, names)

    def test_untraced_query_bytes_are_unchanged_by_a_traced_one(self):
        db = small_db()
        with serve(db) as (server, client):
            version = server.state.session.db_version()
            client.json("POST", "/query?trace=1", {"query": UNION})
            _status, body = client.post("/query", {"query": UNION})
            assert body == expected_query_body(UNION, db, version)

    def test_get_trace_endpoint(self):
        from urllib.parse import quote

        from repro.obs.trace import tree_stage_names

        db = small_db()
        with serve(db) as (server, client):
            status, envelope = client.json(
                "GET", "/trace?query=" + quote(JOIN)
            )
            assert status == 200
            names = tree_stage_names(envelope["trace"])
            assert "parse" in names
            # A repeat of the same query is a cache hit: the trace says so.
            _status, envelope = client.json(
                "GET", "/trace?query=" + quote(JOIN)
            )
            lookups = [
                node
                for node in envelope["trace"].get("children", [])
                if node["name"] == "cache.lookup"
            ]
            assert lookups and lookups[-1]["attrs"]["outcome"] == "hit"

    def test_get_trace_requires_a_query(self):
        db = small_db()
        with serve(db) as (server, client):
            status, payload = client.json("GET", "/trace")
            assert status == 400
            assert "query" in payload["error"]

    def test_sharded_trace_shows_shard_stages(self):
        from repro.obs.trace import tree_stage_names

        db = random_database(
            {"R": 2, "S": 2}, list(range(12)), n_facts=120, seed=5
        )
        with serve(
            db, engine="sharded", shards=2, workers=2
        ) as (server, client):
            status, envelope = client.json(
                "POST", "/query?trace=1", {"query": JOIN}
            )
            assert status == 200
            names = tree_stage_names(envelope["trace"])
            for want in ("shard.refresh", "join", "shard.merge"):
                assert want in names, (want, names)

    def test_traced_requests_feed_stage_histogram(self):
        db = small_db()
        with serve(db) as (server, client):
            client.json("POST", "/query?trace=1", {"query": JOIN})
            _status, raw = client.get("/metrics")
            assert "repro_stage_seconds" in raw.decode("utf-8")


class TestRequestLogging:
    def test_each_request_logs_one_structured_line(self, caplog):
        import logging

        db = small_db()
        with serve(db) as (server, client):
            with caplog.at_level(logging.INFO, logger="repro.server"):
                client.post("/query", {"query": JOIN})
                client.get("/stats")
            lines = [
                record.getMessage()
                for record in caplog.records
                if record.name == "repro.server"
            ]
            query_lines = [l for l in lines if l.startswith("POST /query")]
            assert query_lines, lines
            assert "-> 200" in query_lines[0]
            assert "ms" in query_lines[0]
            assert "cache=miss" in query_lines[0]
            assert any(l.startswith("GET /stats -> 200") for l in lines)

    def test_cache_hit_is_logged_as_such(self, caplog):
        import logging

        db = small_db()
        with serve(db) as (server, client):
            client.post("/query", {"query": JOIN})
            with caplog.at_level(logging.INFO, logger="repro.server"):
                client.post("/query", {"query": JOIN})
            line = next(
                record.getMessage()
                for record in caplog.records
                if record.getMessage().startswith("POST /query")
            )
            assert "cache=hit" in line


# ----------------------------------------------------------------------
# The versioned /v1 mount and the structured error envelope
# ----------------------------------------------------------------------
class TestVersionedRoutes:
    """/v1/<path> serves byte-identical success bodies to <path>; the
    legacy mount additionally signals its deprecation via headers."""

    def request_with_headers(self, client, method, path, body=None):
        conn = HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request(
                method, path, body=None if body is None else json.dumps(body)
            )
            response = conn.getresponse()
            return response.status, response.read(), dict(response.getheaders())
        finally:
            conn.close()

    @pytest.mark.parametrize("seed", range(30))
    def test_query_byte_identical_across_mounts(self, seed):
        db = random_database(
            {"R": 2, "S": 2}, list(range(8)), n_facts=40, seed=seed
        )
        with serve(db) as (_server, client):
            text = JOIN if seed % 2 == 0 else AGG_SUM
            status_legacy, legacy = client.post("/query", {"query": text})
            status_v1, v1 = client.post("/v1/query", {"query": text})
            assert status_legacy == status_v1 == 200
            assert legacy == v1

    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_every_endpoint_is_mounted_under_v1(self, mode):
        with serve(small_db(), server_mode=mode) as (_server, client):
            for method, path, body in (
                ("POST", "/query", {"query": JOIN}),
                ("POST", "/batch", {"queries": [JOIN]}),
                ("POST", "/update", {"insert": {"R": [["q", "r"]]}}),
                ("GET", "/stats", None),
                ("GET", "/metrics", None),
            ):
                status_legacy, legacy = client.request(method, path, body)
                status_v1, v1 = client.request(method, "/v1" + path, body)
                assert status_legacy == status_v1 == 200, (mode, path)
                if path not in ("/update", "/stats", "/metrics"):
                    # (update bumps the version between the two calls;
                    # stats/metrics report changing counters)
                    assert legacy == v1, (mode, path)

    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_legacy_mount_carries_deprecation_headers(self, mode):
        with serve(small_db(), server_mode=mode) as (_server, client):
            _status, _body, headers = self.request_with_headers(
                client, "POST", "/query", {"query": JOIN}
            )
            assert headers.get("Deprecation") == "true"
            assert headers.get("Link") == '</v1/query>; rel="successor-version"'
            _status, _body, headers = self.request_with_headers(
                client, "POST", "/v1/query", {"query": JOIN}
            )
            assert "Deprecation" not in headers
            assert "Link" not in headers

    def test_bare_v1_is_the_root(self):
        with serve(small_db()) as (_server, client):
            status, payload = client.json("GET", "/v1/nope")
            assert status == 404
            assert payload["error"]["message"] == "unknown path /nope"


class TestErrorEnvelope:
    """Every v1 4xx/5xx answers ``{"error": {code, message, detail}}``
    on BOTH tiers; the legacy mount keeps ``{"error": "<message>"}``."""

    @pytest.fixture(scope="class", params=["threaded", "async"])
    def served(self, request):
        with serve(small_db(), server_mode=request.param) as pair:
            yield pair

    def assert_envelope(self, payload, code):
        envelope = payload["error"]
        assert set(envelope) == {"code", "message", "detail"}
        assert envelope["code"] == code
        assert isinstance(envelope["message"], str) and envelope["message"]

    def test_unknown_path(self, served):
        _server, client = served
        status, payload = client.json("GET", "/v1/missing")
        assert status == 404
        self.assert_envelope(payload, "not_found")
        status, payload = client.json("GET", "/missing")
        assert status == 404
        assert payload == {"error": "unknown path /missing"}

    def test_bad_request(self, served):
        _server, client = served
        status, payload = client.json("POST", "/v1/query", {"query": 7})
        assert status == 400
        self.assert_envelope(payload, "bad_request")
        status, payload = client.json("POST", "/query", {"query": 7})
        assert status == 400
        assert isinstance(payload["error"], str)

    def test_method_not_allowed(self, served):
        _server, client = served
        status, payload = client.json("GET", "/v1/query")
        assert status == 405
        self.assert_envelope(payload, "method_not_allowed")

    def test_unknown_view_read(self, served):
        _server, client = served
        status, payload = client.json("GET", "/v1/views/ghost")
        assert status == 404
        self.assert_envelope(payload, "not_found")

    def test_delete_on_non_changefeed(self, served):
        _server, client = served
        status, payload = client.json("DELETE", "/v1/query")
        assert status == 405
        self.assert_envelope(payload, "method_not_allowed")

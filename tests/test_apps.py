"""Unit tests for the provenance-consuming applications."""

import pytest

from repro.apps.clearance import required_clearance
from repro.apps.cost import cheapest_derivation, derivation_cost
from repro.apps.deletion import delete_tuples, propagate_deletion, survives_deletion
from repro.apps.probability import tuple_probability
from repro.apps.trust import is_trusted, minimal_trust_sets
from repro.direct.core_polynomial import core_polynomial_approx
from repro.engine.evaluate import evaluate
from repro.semiring.polynomial import Monomial, Polynomial
from repro.semiring.security import Clearance


class TestDeletion:
    def test_delete_removes_dependent_monomials(self):
        p = Polynomial.parse("s1*s2 + s3")
        assert delete_tuples(p, ["s1"]) == Polynomial.parse("s3")

    def test_delete_everything(self):
        p = Polynomial.parse("s1*s2")
        assert delete_tuples(p, ["s2"]).is_zero()

    def test_survives_deletion(self):
        p = Polynomial.parse("s1 + s2")
        assert survives_deletion(p, ["s1"])
        assert not survives_deletion(p, ["s1", "s2"])

    def test_propagate_over_view(self, fig1, db_table2):
        view = evaluate(fig1.q_union, db_table2)
        maintained = propagate_deletion(view, ["s2"])
        # (a) survives via s1; (b) survives via s4.
        assert maintained[("a",)] == Polynomial.parse("s1")
        assert maintained[("b",)] == Polynomial.parse("s4")

    def test_propagate_drops_dead_tuples(self, fig1, db_table2):
        view = evaluate(fig1.q_union, db_table2)
        maintained = propagate_deletion(view, ["s1", "s2"])
        assert ("a",) not in maintained

    def test_survival_agrees_on_core_provenance(self):
        """Survival is absorptive: core and full provenance agree."""
        p = Polynomial.parse("s1 + s1*s2 + s3^2")
        core = core_polynomial_approx(p)
        for gone in (["s1"], ["s3"], ["s1", "s3"], ["s2"]):
            assert survives_deletion(p, gone) == survives_deletion(core, gone)


class TestTrust:
    def test_basic(self):
        p = Polynomial.parse("s1*s2 + s3")
        assert is_trusted(p, ["s1", "s2"])
        assert not is_trusted(p, ["s1"])

    def test_minimal_trust_sets(self):
        p = Polynomial.parse("s1*s2 + s1*s2*s3 + s4")
        assert set(minimal_trust_sets(p)) == {
            frozenset({"s1", "s2"}),
            frozenset({"s4"}),
        }

    def test_trust_invariant_under_core(self, fig1, db_table2):
        from repro.direct.pipeline import core_provenance

        view = evaluate(fig1.q_conj, db_table2)
        for output, polynomial in view.items():
            core = core_provenance(polynomial, db_table2, output)
            for trusted in (["s1"], ["s2", "s3"], ["s4"], ["s1", "s4"]):
                assert is_trusted(polynomial, trusted) == is_trusted(core, trusted)


class TestProbability:
    def test_single_monomial(self):
        assert tuple_probability(Polynomial.parse("s1*s2"), {"s1": 0.5, "s2": 0.5}) == 0.25

    def test_union_inclusion_exclusion(self):
        p = Polynomial.parse("s1 + s2")
        assert tuple_probability(p, {"s1": 0.5, "s2": 0.5}) == pytest.approx(0.75)

    def test_exponents_irrelevant(self):
        p1 = Polynomial.parse("s1^2")
        p2 = Polynomial.parse("s1")
        probs = {"s1": 0.3}
        assert tuple_probability(p1, probs) == pytest.approx(
            tuple_probability(p2, probs)
        )

    def test_containing_monomial_irrelevant(self):
        """Probability is absorptive-like: a witness containing another
        adds nothing, so core provenance preserves probability."""
        full = Polynomial.parse("s1 + s1*s2")
        core = Polynomial.parse("s1")
        probs = {"s1": 0.4, "s2": 0.9}
        assert tuple_probability(full, probs) == pytest.approx(
            tuple_probability(core, probs)
        )

    def test_missing_probability_raises(self):
        with pytest.raises(KeyError):
            tuple_probability(Polynomial.parse("s1"), {})

    def test_zero_polynomial_probability_zero(self):
        assert tuple_probability(Polynomial.zero(), {}) == 0.0


class TestCost:
    def test_derivation_cost(self):
        p = Polynomial.parse("s1*s2 + s3")
        costs = {"s1": 1.0, "s2": 2.0, "s3": 10.0}
        assert derivation_cost(p, costs) == 3.0
        assert cheapest_derivation(p, costs) == Monomial(["s1", "s2"])

    def test_zero_polynomial(self):
        assert derivation_cost(Polynomial.zero(), {}) == float("inf")
        assert cheapest_derivation(Polynomial.zero(), {}) is None

    def test_cost_invariant_under_core(self):
        full = Polynomial.parse("s1^2 + s1*s2 + s3")
        core = core_polynomial_approx(full)
        costs = {"s1": 2.0, "s2": 1.0, "s3": 4.0}
        # Core drops the exponent on s1^2: cost 2.0 instead of 4.0 —
        # NOT invariant for exponents, by design the core uses each
        # tuple once. The *support* costs are invariant:
        assert derivation_cost(core, costs) == 2.0


class TestClearance:
    def test_required_clearance(self):
        p = Polynomial.parse("s1*s2 + s3")
        levels = {
            "s1": Clearance.PUBLIC,
            "s2": Clearance.TOP_SECRET,
            "s3": Clearance.SECRET,
        }
        assert required_clearance(p, levels) == Clearance.SECRET

    def test_zero_polynomial_never_visible(self):
        assert required_clearance(Polynomial.zero(), {}) == Clearance.NEVER

    def test_clearance_invariant_under_core(self):
        full = Polynomial.parse("s1 + s1*s2 + s3")
        core = core_polynomial_approx(full)
        levels = {
            "s1": Clearance.CONFIDENTIAL,
            "s2": Clearance.TOP_SECRET,
            "s3": Clearance.SECRET,
        }
        assert required_clearance(full, levels) == required_clearance(core, levels)

"""Differential tests: every evaluation engine must agree exactly.

The backtracking engine (Defs. 2.6/2.12 literally), the SQLite-compiled
engine, the set-at-a-time hash-join engine and the shard-parallel
engine (at every shard count) all compute annotated results; on every
query and database they must produce identical polynomial tables — and,
for aggregate queries, identical semimodule annotation tables, tensor
for tensor.  The backtracking engine is the reference implementation;
the others are checked against it (and hence against each other).
"""

import os

import pytest

from repro.aggregate import evaluate_aggregate
from repro.db.generators import (
    all_databases,
    chain_query,
    cycle_query,
    random_cq,
    random_database,
    random_ucq,
    star_query,
)
from repro.db.sqlite_backend import SQLiteDatabase
from repro.engine.evaluate import evaluate, evaluate_backtracking
from repro.engine.hashjoin import evaluate_hashjoin
from repro.engine.sharded import (
    evaluate_aggregate_sharded,
    evaluate_sharded,
)
from repro.query.parser import parse_query

#: Worker-pool size of the sharded runs; the CI ``parallel`` job pins
#: it to 2 explicitly.
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))


def assert_engines_agree(query, db):
    """Backtracking ≡ SQLite ≡ hash join, polynomial for polynomial."""
    reference = evaluate_backtracking(query, db)
    store = SQLiteDatabase.from_annotated(db)
    via_sql = store.evaluate(query)
    store.close()
    assert reference == via_sql
    assert reference == evaluate_hashjoin(query, db)
    assert reference == evaluate(query, db)  # default dispatch


def assert_aggregate_engines_agree(query, db):
    """Backtracking ≡ SQLite ≡ hash join, tensor for tensor."""
    reference = evaluate_aggregate(query, db, engine="backtrack")
    store = SQLiteDatabase.from_annotated(db)
    via_sql = store.evaluate_aggregate(query)
    store.close()
    assert reference == via_sql
    assert reference == evaluate_aggregate(query, db, engine="hashjoin")


class TestPaperInstances:
    def test_figure1_on_table2(self, fig1, db_table2):
        assert_engines_agree(fig1.q_union, db_table2)
        assert_engines_agree(fig1.q_conj, db_table2)

    def test_figure2_on_tables45(self, fig2, db_table4, db_table5):
        for db in (db_table4, db_table5):
            assert_engines_agree(fig2.q_no_pmin, db)
            assert_engines_agree(fig2.q_alt, db)

    def test_qhat_on_table6(self, qhat, db_table6):
        assert_engines_agree(qhat, db_table6)


class TestJoinShapes:
    @pytest.mark.parametrize("shape", [chain_query(3), star_query(3), cycle_query(3)])
    def test_shapes_on_random_graph(self, shape):
        db = random_database({"R": 2}, ["a", "b", "c"], 6, seed=11)
        assert_engines_agree(shape, db)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_cqs(self, seed):
        query = random_cq(
            seed=seed,
            n_atoms=3,
            n_variables=3,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 5, seed=seed)
        assert_engines_agree(query, db)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_unions(self, seed):
        query = random_ucq(seed=seed, n_adjuncts=2, n_atoms=2, n_variables=3)
        db = random_database({"R": 2, "S": 1}, ["a", "b"], 4, seed=seed)
        assert_engines_agree(query, db)

    def test_constants_and_diseqs(self):
        query = parse_query("ans(x) :- R(x, y), S(y), x != 'a', x != y")
        for db in all_databases({"R": 2, "S": 1}, ["a", "b"], max_facts=3):
            assert_engines_agree(query, db)


class TestThreeEngineDifferential:
    """The 60-seed property suite: one random workload per seed.

    Each seed derives a random database plus a random query family —
    a conjunctive query with seed-dependent disequality density, a
    union, and (in the aggregate class below) a grouped aggregate —
    and asserts exact three-way agreement.  Seeds vary the domain,
    database size and query shape so the suite sweeps empty results,
    cartesian products, self-joins and disequality filtering.
    """

    SEEDS = range(60)

    @staticmethod
    def _database(seed, domain_size=4):
        domain = ["d{}".format(i) for i in range(2 + seed % domain_size)]
        return random_database(
            {"R": 2, "S": 1, "T": 2},
            domain,
            n_facts=4 + seed % 7,
            seed=seed,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conjunctive_queries(self, seed):
        query = random_cq(
            seed=seed,
            n_atoms=2 + seed % 3,
            n_variables=3,
            relations={"R": 2, "S": 1, "T": 2},
            head_arity=1 + seed % 2,
            diseq_probability=(seed % 4) * 0.25,
        )
        assert_engines_agree(query, self._database(seed))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unions(self, seed):
        query = random_ucq(
            seed=seed,
            n_adjuncts=2 + seed % 2,
            n_atoms=2,
            n_variables=3,
            relations={"R": 2, "S": 1, "T": 2},
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        assert_engines_agree(query, self._database(seed))


class TestThreeEngineAggregates:
    """Tensor-for-tensor agreement on aggregate queries, 60 seeds."""

    OPS = ("sum", "count", "min", "max")

    @pytest.mark.parametrize("seed", range(60))
    def test_aggregate_workloads(self, seed):
        op = self.OPS[seed % len(self.OPS)]
        if seed % 3 == 0:
            text = "agg(x, {}(v), count(*)) :- R(x, y), S(y, v)".format(op)
        elif seed % 3 == 1:
            text = (
                "agg(x, {}(v)) :- R(x, v)\n"
                "agg(x, {}(w)) :- S(x, w)".format(op, op)
            )
        else:
            text = "agg({}(v)) :- R(x, v), S(v, y), x != y".format(op)
        query = parse_query(text)
        db = random_database(
            {"R": 2, "S": 2}, list(range(4 + seed % 3)), 5 + seed % 8, seed=seed
        )
        assert_aggregate_engines_agree(query, db)


class TestCrossShardDifferential:
    """The 60-seed cross-shard suite: shard counts must be invisible.

    ``sharded(1) ≡ sharded(2) ≡ sharded(4) ≡ sharded(8) ≡ hashjoin ≡
    backtrack`` — polynomial-identical on CQ≠/UCQ≠, tensor-identical on
    aggregates.  Seeds sweep the shard-specific hazards on top of the
    usual query-shape ones: empty relations, relations smaller than the
    shard count (some shards own nothing), broadcast thresholds from
    "partition everything" to "broadcast everything" (anchorless plans
    run on a single shard), self-joins over partitioned relations, and
    databases whose every relation is broadcast.
    """

    SEEDS = range(60)
    SHARD_COUNTS = (1, 2, 4, 8)
    RELATIONS = {"R": 2, "S": 1, "T": 2}

    @staticmethod
    def _database(seed):
        domain = ["d{}".format(i) for i in range(2 + seed % 4)]
        db = random_database(
            TestCrossShardDifferential.RELATIONS,
            domain,
            n_facts=3 + seed % 9,  # some relations end up below any shard count
            seed=seed,
        )
        if seed % 5 == 0:
            # Drain one relation: declared but empty.
            for row in db.rows("S"):
                db.remove("S", row)
        return db

    @staticmethod
    def _threshold(seed):
        # 0 partitions everything (every fragment exercised), 2 mixes
        # broadcast and partitioned relations, 16 broadcasts these
        # small databases entirely (single-shard anchorless path).
        return (0, 2, 16)[seed % 3]

    @classmethod
    def _assert_shards_agree(cls, query, db, seed):
        reference = evaluate_backtracking(query, db)
        assert evaluate_hashjoin(query, db) == reference
        for shards in cls.SHARD_COUNTS:
            sharded = evaluate_sharded(
                query,
                db,
                shards=shards,
                workers=WORKERS,
                mode="thread",
                broadcast_threshold=cls._threshold(seed),
            )
            assert sharded == reference, "diverged at {} shards".format(shards)

    @classmethod
    def _assert_aggregate_shards_agree(cls, query, db, seed):
        reference = evaluate_aggregate(query, db, engine="backtrack")
        assert evaluate_aggregate(query, db, engine="hashjoin") == reference
        for shards in cls.SHARD_COUNTS:
            sharded = evaluate_aggregate_sharded(
                query,
                db,
                shards=shards,
                workers=WORKERS,
                mode="thread",
                broadcast_threshold=cls._threshold(seed),
            )
            assert sharded == reference, "diverged at {} shards".format(shards)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conjunctive_queries(self, seed):
        query = random_cq(
            seed=seed,
            n_atoms=2 + seed % 3,
            n_variables=3,
            relations=self.RELATIONS,
            head_arity=1 + seed % 2,
            diseq_probability=(seed % 4) * 0.25,
        )
        self._assert_shards_agree(query, self._database(seed), seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unions(self, seed):
        query = random_ucq(
            seed=seed,
            n_adjuncts=2 + seed % 2,
            n_atoms=2,
            n_variables=3,
            relations=self.RELATIONS,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        self._assert_shards_agree(query, self._database(seed), seed)

    OPS = ("sum", "count", "min", "max")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_aggregates(self, seed):
        op = self.OPS[seed % len(self.OPS)]
        if seed % 3 == 0:
            text = "agg(x, {}(v), count(*)) :- R(x, y), T(y, v)".format(op)
        elif seed % 3 == 1:
            text = (
                "agg(x, {}(v)) :- R(x, v)\n"
                "agg(x, {}(w)) :- T(x, w)".format(op, op)
            )
        else:
            text = "agg({}(v)) :- R(x, v), T(v, y), x != y".format(op)
        db = random_database(
            {"R": 2, "T": 2},
            list(range(4 + seed % 3)),
            n_facts=5 + seed % 8,
            seed=seed,
        )
        if seed % 7 == 0:
            for row in db.rows("T"):  # empty relation inside a join
                db.remove("T", row)
        self._assert_aggregate_shards_agree(parse_query(text), db, seed)


class TestAggregates:
    @pytest.mark.parametrize("op", ["sum", "count", "min", "max"])
    def test_operators_on_join(self, op):
        query = parse_query(
            "agg(x, {}(v)) :- R(x, y), S(y, v)".format(op)
        )
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 8, seed=3)
        assert_aggregate_engines_agree(query, db)

    def test_union_rules_and_count_star(self):
        query = parse_query(
            "agg(x, sum(v), count(*)) :- R(x, v)\n"
            "agg(x, sum(w), count(*)) :- S(x, w)"
        )
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 7, seed=5)
        assert_aggregate_engines_agree(query, db)

    def test_constants_and_diseqs_in_aggregate_bodies(self):
        query = parse_query("agg(min(y)) :- R(x, y), R(y, x), x != y")
        for db in all_databases({"R": 2}, [0, 1], max_facts=3):
            assert_aggregate_engines_agree(query, db)

    @pytest.mark.parametrize("seed", range(8))
    def test_exhaustive_small_instances(self, seed):
        query = parse_query("agg(x, sum(v), min(v)) :- R(x, v), S(v, y)")
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 6, seed=seed)
        assert_aggregate_engines_agree(query, db)


class TestColumnarVsDictDifferential:
    """The columnar result path against the legacy dict merge.

    The flat-column kernels (``ColumnarTable`` + vectorized counter-
    merge + lazy decode) and the dict-of-dicts path are two full
    implementations of the same shard-merge algebra; over the 60-seed
    sweep they must be polynomial-identical to each other and to the
    serial engines at every shard count — and tensor-identical on
    aggregates.
    """

    SEEDS = range(60)
    SHARD_COUNTS = (1, 2, 4)

    _database = staticmethod(TestCrossShardDifferential._database)
    _threshold = staticmethod(TestCrossShardDifferential._threshold)

    @classmethod
    def _assert_columnar_matches_dict(cls, query, db, seed):
        reference = evaluate_backtracking(query, db)
        assert evaluate_hashjoin(query, db) == reference
        for shards in cls.SHARD_COUNTS:
            by_path = {}
            for columnar in (True, False):
                by_path[columnar] = evaluate_sharded(
                    query,
                    db,
                    shards=shards,
                    workers=WORKERS,
                    mode="thread",
                    broadcast_threshold=cls._threshold(seed),
                    columnar=columnar,
                )
                assert by_path[columnar] == reference, (
                    "columnar={} diverged at {} shards".format(columnar, shards)
                )
            assert by_path[True] == by_path[False]

    @classmethod
    def _assert_aggregate_columnar_matches_dict(cls, query, db, seed):
        reference = evaluate_aggregate(query, db, "backtrack")
        for shards in cls.SHARD_COUNTS:
            for columnar in (True, False):
                sharded = evaluate_aggregate_sharded(
                    query,
                    db,
                    shards=shards,
                    workers=WORKERS,
                    mode="thread",
                    broadcast_threshold=cls._threshold(seed),
                    columnar=columnar,
                )
                assert sharded == reference, (
                    "columnar={} diverged at {} shards".format(columnar, shards)
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conjunctive_queries(self, seed):
        query = random_cq(
            seed=seed,
            n_atoms=2 + seed % 3,
            n_variables=3,
            relations=TestCrossShardDifferential.RELATIONS,
            head_arity=1 + seed % 2,
            diseq_probability=(seed % 4) * 0.25,
        )
        self._assert_columnar_matches_dict(query, self._database(seed), seed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unions(self, seed):
        query = random_ucq(
            seed=seed,
            n_adjuncts=2 + seed % 2,
            n_atoms=2,
            n_variables=3,
            relations=TestCrossShardDifferential.RELATIONS,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        self._assert_columnar_matches_dict(query, self._database(seed), seed)

    @pytest.mark.parametrize("seed", range(0, 60, 4))
    def test_aggregates(self, seed):
        op = ("sum", "count", "min", "max")[seed % 4]
        text = "agg(x, {}(v), count(*)) :- R(x, y), T(y, v)".format(op)
        db = random_database(
            {"R": 2, "T": 2},
            list(range(4 + seed % 3)),
            n_facts=5 + seed % 8,
            seed=seed,
        )
        self._assert_aggregate_columnar_matches_dict(
            parse_query(text), db, seed
        )

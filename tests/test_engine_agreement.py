"""Differential tests: the two evaluation engines must agree exactly.

Both the backtracking engine (Defs. 2.6/2.12 literally) and the
SQLite-compiled engine compute annotated results; on every query and
database they must produce identical polynomial tables — and, for
aggregate queries, identical semimodule annotation tables.
"""

import pytest

from repro.aggregate import evaluate_aggregate
from repro.db.generators import (
    all_databases,
    chain_query,
    cycle_query,
    random_cq,
    random_database,
    random_ucq,
    star_query,
)
from repro.db.sqlite_backend import SQLiteDatabase
from repro.engine.evaluate import evaluate
from repro.query.parser import parse_query


def assert_engines_agree(query, db):
    in_memory = evaluate(query, db)
    store = SQLiteDatabase.from_annotated(db)
    via_sql = store.evaluate(query)
    store.close()
    assert in_memory == via_sql


def assert_aggregate_engines_agree(query, db):
    in_memory = evaluate_aggregate(query, db)
    store = SQLiteDatabase.from_annotated(db)
    via_sql = store.evaluate_aggregate(query)
    store.close()
    assert in_memory == via_sql


class TestPaperInstances:
    def test_figure1_on_table2(self, fig1, db_table2):
        assert_engines_agree(fig1.q_union, db_table2)
        assert_engines_agree(fig1.q_conj, db_table2)

    def test_figure2_on_tables45(self, fig2, db_table4, db_table5):
        for db in (db_table4, db_table5):
            assert_engines_agree(fig2.q_no_pmin, db)
            assert_engines_agree(fig2.q_alt, db)

    def test_qhat_on_table6(self, qhat, db_table6):
        assert_engines_agree(qhat, db_table6)


class TestJoinShapes:
    @pytest.mark.parametrize("shape", [chain_query(3), star_query(3), cycle_query(3)])
    def test_shapes_on_random_graph(self, shape):
        db = random_database({"R": 2}, ["a", "b", "c"], 6, seed=11)
        assert_engines_agree(shape, db)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_cqs(self, seed):
        query = random_cq(
            seed=seed,
            n_atoms=3,
            n_variables=3,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 5, seed=seed)
        assert_engines_agree(query, db)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_unions(self, seed):
        query = random_ucq(seed=seed, n_adjuncts=2, n_atoms=2, n_variables=3)
        db = random_database({"R": 2, "S": 1}, ["a", "b"], 4, seed=seed)
        assert_engines_agree(query, db)

    def test_constants_and_diseqs(self):
        query = parse_query("ans(x) :- R(x, y), S(y), x != 'a', x != y")
        for db in all_databases({"R": 2, "S": 1}, ["a", "b"], max_facts=3):
            assert_engines_agree(query, db)


class TestAggregates:
    @pytest.mark.parametrize("op", ["sum", "count", "min", "max"])
    def test_operators_on_join(self, op):
        query = parse_query(
            "agg(x, {}(v)) :- R(x, y), S(y, v)".format(op)
        )
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 8, seed=3)
        assert_aggregate_engines_agree(query, db)

    def test_union_rules_and_count_star(self):
        query = parse_query(
            "agg(x, sum(v), count(*)) :- R(x, v)\n"
            "agg(x, sum(w), count(*)) :- S(x, w)"
        )
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 7, seed=5)
        assert_aggregate_engines_agree(query, db)

    def test_constants_and_diseqs_in_aggregate_bodies(self):
        query = parse_query("agg(min(y)) :- R(x, y), R(y, x), x != y")
        for db in all_databases({"R": 2}, [0, 1], max_facts=3):
            assert_aggregate_engines_agree(query, db)

    @pytest.mark.parametrize("seed", range(8))
    def test_exhaustive_small_instances(self, seed):
        query = parse_query("agg(x, sum(v), min(v)) :- R(x, v), S(v, y)")
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 6, seed=seed)
        assert_aggregate_engines_agree(query, db)

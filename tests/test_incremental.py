"""The incremental view-maintenance subsystem.

The load-bearing guarantee is the equivalence property at the bottom:
for ≥ 50 seeded-random program/delta-batch pairs (CQ and UCQ views,
stacked layers, inserts, deletes, retags, kills and revivals), the
incrementally maintained registry matches full re-evaluation on
base-expanded provenance — exact polynomials, coefficients included.
"""

import random

import pytest

from repro.apps.deletion import (
    delete_tuples,
    partition_by_survival,
    propagate_deletion,
)
from repro.db.generators import random_cq, random_database, random_ucq
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate
from repro.errors import EvaluationError, SchemaError
from repro.incremental.delta import (
    Delta,
    HashIndexes,
    delta_provenance,
)
from repro.incremental.maintain import (
    check_consistency,
    full_recompute,
    maintain,
    refresh,
)
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program, parse_query
from repro.semiring.polynomial import Polynomial
from repro.views.program import evaluate_program, invalidation_index


def simple_db():
    return AnnotatedDatabase.from_dict(
        {
            "R": {
                ("a", "b"): "s1",
                ("b", "c"): "s2",
                ("c", "a"): "s3",
            }
        }
    )


class TestDbBookkeeping:
    def test_remove_returns_annotation_and_clears_index(self):
        db = simple_db()
        assert db.remove("R", ("a", "b")) == "s1"
        assert not db.contains("R", ("a", "b"))
        assert "s1" not in db.annotations()
        assert db.fact_count() == 2

    def test_remove_absent_raises(self):
        db = simple_db()
        with pytest.raises(SchemaError):
            db.remove("R", ("z", "z"))
        with pytest.raises(SchemaError):
            db.remove("Nope", ("z",))

    def test_remove_keeps_relation_declared(self):
        db = simple_db()
        for row in list(db.rows("R")):
            db.remove("R", row)
        assert db.rows("R") == []
        db.add("R", ("x", "y"))  # same arity still enforced
        with pytest.raises(SchemaError):
            db.add("R", ("x",))

    def test_retag_moves_annotation(self):
        db = simple_db()
        assert db.retag("R", ("a", "b"), "t9") == "s1"
        assert db.annotation_of("R", ("a", "b")) == "t9"
        assert db.tuples_for_annotation("s1") == []
        assert db.tuples_for_annotation("t9") == [("R", ("a", "b"))]

    def test_retag_to_same_annotation_is_noop(self):
        db = simple_db()
        version = db.version()
        assert db.retag("R", ("a", "b"), "s1") == "s1"
        assert db.version() == version

    def test_version_and_changes_since(self):
        db = simple_db()
        version = db.version()
        db.add("R", ("x", "y"))
        db.remove("R", ("b", "c"))
        db.retag("R", ("c", "a"), "t1")
        records = db.changes_since(version)
        assert [record[1] for record in records] == ["insert", "delete", "retag"]
        assert db.changes_since(db.version()) == []
        assert db.changes_since(0) == db._changelog
        assert db.changes_since(version + 1) == records[1:]

    def test_prune_changes_drops_consumed_prefix(self):
        db = simple_db()
        initial = len(db.changes_since(0))
        version = db.version()
        db.add("R", ("x", "y"))
        db.remove("R", ("b", "c"))
        later = db.version()
        db.retag("R", ("c", "a"), "t1")
        assert db.prune_changes(later) == initial + 2
        assert [record[1] for record in db.changes_since(0)] == ["retag"]
        assert db.changes_since(version) == db.changes_since(0)
        assert db.prune_changes(later) == 0  # idempotent on a pruned log
        assert db.prune_changes(db.version()) == 1
        assert db.changes_since(0) == []

    def test_track_changes_false_keeps_no_log(self):
        db = AnnotatedDatabase(track_changes=False)
        db.add("R", ("a", "b"))
        db.remove("R", ("a", "b"))
        assert db.version() == 2
        assert db.changes_since(0) == []

    def test_delta_from_changes_folds_churn(self):
        db = simple_db()
        version = db.version()
        db.add("R", ("x", "y"))          # born ...
        db.remove("R", ("x", "y"))       # ... and died: nets to nothing
        db.remove("R", ("a", "b"))       # real delete ...
        db.add("R", ("a", "b"), annotation="fresh")  # ... then revival
        db.retag("R", ("b", "c"), "t7")  # plain retag
        delta = Delta.from_changes(db.changes_since(version))
        assert ("R", ("x", "y")) not in delta.deletes
        assert all(row != ("x", "y") for _r, row, _a in delta.inserts)
        assert ("R", ("a", "b")) in delta.deletes
        assert ("R", ("a", "b"), "fresh") in delta.inserts
        assert ("R", ("b", "c"), "t7") in delta.retags

    def test_retag_folds_into_window_insert(self):
        db = simple_db()
        version = db.version()
        db.add("R", ("x", "y"))
        db.retag("R", ("x", "y"), "renamed")
        delta = Delta.from_changes(db.changes_since(version))
        assert delta.inserts == (("R", ("x", "y"), "renamed"),)
        assert delta.retags == ()


class TestDeletionHelpers:
    def test_delete_absent_symbol_is_noop(self):
        p = Polynomial.parse("s1*s2 + s3")
        assert delete_tuples(p, ["nope"]) == p
        assert delete_tuples(p, []) == p

    def test_partition_by_survival(self):
        view = {
            ("a",): Polynomial.parse("s1*s2 + s3"),
            ("b",): Polynomial.parse("s1*s2"),
        }
        survivors, killed = partition_by_survival(view, ["s2", "absent"])
        assert survivors == {("a",): Polynomial.parse("s3")}
        assert killed == [("b",)]

    def test_propagate_deletion_delegates(self):
        view = {("a",): Polynomial.parse("s1"), ("b",): Polynomial.parse("s2")}
        assert propagate_deletion(view, ["s1", "ghost"]) == {
            ("b",): Polynomial.parse("s2")
        }


class TestHashIndexes:
    def test_lookup_builds_lazily_and_filters(self):
        db = simple_db()
        indexes = HashIndexes(db)
        assert indexes.built_count() == 0
        assert indexes.lookup("R", (0,), ("a",)) == [("a", "b")]
        assert indexes.built_count() == 1
        assert indexes.lookup("R", (0,), ("zzz",)) == ()

    def test_empty_mask_scans(self):
        db = simple_db()
        indexes = HashIndexes(db)
        assert sorted(indexes.lookup("R", (), ())) == sorted(db.rows("R"))

    def test_maintained_under_updates(self):
        db = simple_db()
        indexes = HashIndexes(db)
        indexes.lookup("R", (1,), ("b",))  # build
        db.add("R", ("z", "b"))
        indexes.insert("R", ("z", "b"))
        assert sorted(indexes.lookup("R", (1,), ("b",))) == [("a", "b"), ("z", "b")]
        db.remove("R", ("a", "b"))
        indexes.remove("R", ("a", "b"))
        assert indexes.lookup("R", (1,), ("b",)) == [("z", "b")]


class TestDeltaProvenance:
    """Delta evaluation against the brute-force definition."""

    def brute_force_increase(self, query, old_db, new_db):
        """New-minus-old provenance, monomial by monomial."""
        old = evaluate(query, old_db)
        new = evaluate(query, new_db)
        increase = {}
        for row, polynomial in new.items():
            stale = old.get(row, Polynomial.zero()).terms
            terms = {
                monomial: coefficient - stale.get(monomial, 0)
                for monomial, coefficient in polynomial.terms.items()
                if coefficient > stale.get(monomial, 0)
            }
            if terms:
                increase[row] = Polynomial(terms)
        return increase

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_on_random_cqs(self, seed):
        rng = random.Random(seed * 31 + 1009)  # decorrelated from the db seed
        old_db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 7, seed=seed)
        query = random_cq(
            seed=seed, n_atoms=3, n_variables=3, head_arity=1,
            diseq_probability=0.3,
        )
        new_db = AnnotatedDatabase()
        for relation, row, annotation in old_db.all_facts():
            new_db.add(relation, row, annotation=annotation)
        universe = [
            ("R", (x, y)) for x in "abc" for y in "abc"
        ] + [("S", (x,)) for x in "abc"]
        inserted = {}
        for relation, row in rng.sample(universe, 6):
            if not new_db.contains(relation, row):
                new_db.add(relation, row)
                inserted.setdefault(relation, set()).add(row)
        if not inserted:
            pytest.skip("sample landed entirely on existing rows")
        increase = delta_provenance(query, new_db, HashIndexes(new_db), inserted)
        assert increase == self.brute_force_increase(query, old_db, new_db)

    def test_union_adjunct_increases_add_up(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b")], "S": [("b",)]})
        query = parse_query(
            """
            ans(x) :- R(x, y)
            ans(x) :- R(x, y), S(y)
            """
        )
        new_db = AnnotatedDatabase()
        for relation, row, annotation in db.all_facts():
            new_db.add(relation, row, annotation=annotation)
        new_db.add("R", ("c", "b"), annotation="s9")
        increase = delta_provenance(
            query, new_db, HashIndexes(new_db), {"R": {("c", "b")}}
        )
        assert increase == {("c",): Polynomial.parse("s9 + s2*s9")}


class TestViewRegistry:
    PROGRAM = """
        supplies(f, s) :- Ships(f, w), Stocks(w, s)
        shared(s, t) :- supplies(f, s), supplies(f, t), s != t
        entangled(t) :- shared('s1', t)
    """

    def network_db(self):
        db = AnnotatedDatabase()
        for factory, warehouse in [("f1", "w1"), ("f1", "w2"), ("f2", "w2")]:
            db.add("Ships", (factory, warehouse))
        for warehouse, store in [("w1", "s1"), ("w2", "s1"), ("w2", "s2")]:
            db.add("Stocks", (warehouse, store))
        return db

    def registry(self):
        return ViewRegistry(parse_program(self.PROGRAM), self.network_db())

    def test_initial_state_matches_evaluate_program(self):
        registry = self.registry()
        reference = evaluate_program(
            parse_program(self.PROGRAM), self.network_db()
        )
        for name in registry.order:
            assert registry.base_provenance(name) == reference.base_provenance(name)

    def test_insert_propagates_through_layers(self):
        registry = self.registry()
        before = registry.base_provenance("shared")
        report = registry.apply(Delta(inserts=[("Stocks", ("w1", "s2"))]))
        assert ("f1", "s2") in registry.view("supplies")
        # supplies(f1, s2) already existed (via w2), so only its polynomial
        # grows; downstream views keep their symbolic polynomials and pick
        # the change up through the updated binding.
        assert report.touched_views() == ["supplies"]
        assert registry.base_provenance("shared") != before
        assert check_consistency(registry).consistent

    def test_insert_creating_new_view_tuple_reaches_downstream(self):
        registry = self.registry()
        report = registry.apply(Delta(inserts=[("Ships", ("f9", "w1"))]))
        assert ("f9", "s1") in registry.view("supplies")
        assert report.changes["supplies"].inserted
        assert check_consistency(registry).consistent

    def test_delete_kills_and_reinsert_revives(self):
        registry = self.registry()
        killed = registry.apply(Delta(deletes=[("Stocks", ("w2", "s2"))]))
        assert ("s2",) not in registry.view("entangled")
        assert killed.changes["entangled"].deleted
        revived = registry.apply(Delta(inserts=[("Stocks", ("w2", "s2"))]))
        assert ("s2",) in registry.view("entangled")
        assert revived.changes["entangled"].inserted
        assert check_consistency(registry).consistent

    def test_retag_rewrites_polynomials_and_reports(self):
        registry = self.registry()
        old_symbol = self.network_db().annotation_of("Ships", ("f1", "w1"))
        report = registry.apply(
            Delta(retags=[("Ships", ("f1", "w1"), "audit1")])
        )
        assert report.changes["supplies"].updated
        assert all(
            "audit1" in polynomial.support() or old_symbol not in polynomial.support()
            for polynomial in registry.base_provenance("supplies").values()
        )
        assert check_consistency(registry).consistent

    def test_non_abstractly_tagged_base_rejected(self):
        db = AnnotatedDatabase.from_dict(
            {"R": {("a", "b"): "s1", ("c", "d"): "s1"}}
        )
        with pytest.raises(EvaluationError):
            ViewRegistry(parse_program("V(x) :- R(x, y)"), db)

    def test_insert_with_live_annotation_rejected(self):
        registry = self.registry()
        live = registry.base_database().annotation_of("Ships", ("f1", "w1"))
        with pytest.raises(EvaluationError):
            registry.apply(Delta(inserts=[("Ships", ("f9", "w9"), live)]))

    def test_retag_creating_shared_tag_rejected(self):
        registry = self.registry()
        live = registry.base_database().annotation_of("Ships", ("f1", "w1"))
        with pytest.raises(EvaluationError):
            registry.apply(Delta(retags=[("Ships", ("f2", "w2"), live)]))

    def test_reusing_annotation_freed_in_same_batch_is_allowed(self):
        registry = self.registry()
        freed = registry.base_database().annotation_of("Ships", ("f1", "w1"))
        registry.apply(
            Delta(
                deletes=[("Ships", ("f1", "w1"))],
                inserts=[("Ships", ("f1", "w9"), freed)],
            )
        )
        assert check_consistency(registry).consistent

    def test_retag_to_annotation_freed_in_same_batch(self):
        registry = self.registry()
        base = registry.base_database()
        freed = base.annotation_of("Stocks", ("w1", "s1"))
        report = registry.apply(
            Delta(
                deletes=[("Stocks", ("w1", "s1"))],
                retags=[("Stocks", ("w2", "s1"), freed)],
            )
        )
        # The surviving supplies via w2 must not be eaten by the filter.
        assert ("f1", "s1") in registry.view("supplies")
        assert report.changes["supplies"].updated
        assert check_consistency(registry).consistent

    def test_chained_retags_in_one_batch_compose(self):
        registry = self.registry()
        registry.apply(
            Delta(
                retags=[
                    ("Ships", ("f1", "w1"), "t1"),
                    ("Ships", ("f1", "w1"), "t2"),
                ]
            )
        )
        for polynomial in registry.base_provenance("supplies").values():
            assert "t1" not in polynomial.support()
        assert check_consistency(registry).consistent

    def test_retag_round_trip_in_one_batch_is_noop(self):
        registry = self.registry()
        before = registry.base_provenance("supplies")
        original = registry.base_database().annotation_of("Ships", ("f1", "w1"))
        registry.apply(
            Delta(
                retags=[
                    ("Ships", ("f1", "w1"), "t1"),
                    ("Ships", ("f1", "w1"), original),
                ]
            )
        )
        assert registry.base_provenance("supplies") == before
        assert check_consistency(registry).consistent

    def test_view_deltas_are_rejected(self):
        registry = self.registry()
        with pytest.raises(EvaluationError):
            registry.apply(Delta(inserts=[("supplies", ("f9", "s9"))]))

    def test_clashing_view_names_are_rejected(self):
        with pytest.raises(EvaluationError):
            ViewRegistry(
                parse_program("Ships(x, y) :- Stocks(x, y)"), self.network_db()
            )

    def test_insert_into_brand_new_relation(self):
        registry = ViewRegistry(
            parse_program("V(x) :- T(x, x)"), AnnotatedDatabase()
        )
        registry.apply(Delta(inserts=[("T", ("a", "a")), ("T", ("a", "b"))]))
        assert sorted(registry.view("V")) == [("a",)]
        assert check_consistency(registry).consistent

    def test_noop_reinsert_adds_no_monomials(self):
        registry = self.registry()
        before = registry.view("supplies")
        report = registry.apply(Delta(inserts=[("Ships", ("f1", "w1"), "s1")]))
        assert registry.view("supplies") == before
        assert report.summary() == "no view changes"

    def test_base_database_round_trips(self):
        registry = self.registry()
        registry.apply(Delta(deletes=[("Ships", ("f2", "w2"))]))
        base = registry.base_database()
        assert base.relations() == {"Ships", "Stocks"}
        assert base.fact_count() == 5

    def test_refresh_and_full_recompute_agree(self):
        registry = self.registry()
        registry.apply(Delta(inserts=[("Ships", ("f3", "w1"))]))
        rebuilt = refresh(registry)
        for name in registry.order:
            assert registry.base_provenance(name) == rebuilt.base_provenance(name)
        assert set(full_recompute(registry).views) == set(registry.order)

    def test_as_evaluation_exports_layer_symbols(self):
        registry = self.registry()
        evaluation = registry.as_evaluation()
        layers = evaluation.layer_symbols()
        assert set(layers) == {"supplies", "shared", "entangled"}
        some_symbol = next(iter(layers["supplies"]))
        assert evaluation.symbol_layer(some_symbol) == "supplies"
        assert evaluation.symbol_layer("s1") is None
        index = invalidation_index(evaluation.bindings)
        assert any(
            dependent in layers["shared"]
            for dependent in index.get(some_symbol, frozenset())
        ) or some_symbol not in index


class TestMaintainLoop:
    def test_maintain_applies_stream_with_audits(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "c")]})
        deltas = [
            Delta(inserts=[("R", ("c", "d"))]),
            Delta(deletes=[("R", ("a", "b"))]),
            Delta(inserts=[("R", ("a", "b"))]),
        ]
        registry, reports = maintain(
            parse_program("V(x, z) :- R(x, y), R(y, z)"), db, deltas,
            check_every=1,
        )
        assert len(reports) == 3
        assert sorted(registry.view("V")) == [("a", "c"), ("b", "d")]


# ----------------------------------------------------------------------
# The equivalence property: incremental ≡ recompute
# ----------------------------------------------------------------------
RELATIONS = {"R": 2, "S": 1}
DOMAIN = ["a", "b", "c"]


def random_program(rng):
    """A 1-3 view program: random CQ/UCQ base views plus, sometimes, a
    second layer joining a view with a base relation."""
    program = {}
    v1 = random_cq(
        seed=rng.randrange(2**30), n_atoms=rng.choice([2, 3]),
        n_variables=3, relations=RELATIONS, head_arity=2,
        diseq_probability=0.25,
    )
    while v1.arity != 2:  # random_cq may shrink the head
        v1 = random_cq(
            seed=rng.randrange(2**30), n_atoms=3, n_variables=3,
            relations=RELATIONS, head_arity=2, diseq_probability=0.25,
        )
    program["V1"] = v1
    if rng.random() < 0.6:
        program["V2"] = random_ucq(
            seed=rng.randrange(2**30), n_adjuncts=2, n_atoms=2,
            n_variables=3, relations=RELATIONS, head_arity=1,
        )
    if rng.random() < 0.6:
        program["V3"] = parse_query("V3(x) :- V1(x, y), S(y)")
    return program


def random_delta(rng, db):
    """A random batch: deletes of present rows, inserts of absent (or
    just-deleted — revival) rows, occasional retags of untouched rows."""
    present = [
        (relation, row)
        for relation in sorted(db.relations())
        for row in db.rows(relation)
    ]
    universe = [("R", (x, y)) for x in DOMAIN for y in DOMAIN]
    universe += [("S", (x,)) for x in DOMAIN]
    deletes = rng.sample(present, min(len(present), rng.randrange(0, 3)))
    deleted = set(deletes)
    absent = [fact for fact in universe if not db.contains(*fact)]
    candidates = absent + list(deleted)  # re-inserting a delete = revival
    inserts = [
        (relation, row)
        for relation, row in rng.sample(
            candidates, min(len(candidates), rng.randrange(0, 3))
        )
    ]
    retags = []
    for relation, row in rng.sample(present, min(len(present), 1)):
        if (relation, row) not in deleted and rng.random() < 0.4:
            retags.append((relation, row, "rt{}".format(rng.randrange(10**6))))
    return Delta(inserts=inserts, deletes=deletes, retags=retags)


def mirror_apply(db, delta):
    """Apply a delta to a plain base database (the oracle's copy)."""
    for relation, row in delta.deletes:
        db.remove(relation, row)
    for relation, row, annotation in delta.inserts:
        db.add(relation, row, annotation=annotation)
    for relation, row, annotation in delta.retags:
        db.retag(relation, row, annotation)


@pytest.mark.parametrize("seed", range(60))
def test_incremental_equals_recompute(seed):
    """incremental maintenance ≡ full re-evaluation, 60 random pairs."""
    rng = random.Random(seed * 7919 + 13)
    base = random_database(RELATIONS, DOMAIN, n_facts=rng.randrange(4, 9), seed=seed)
    program = random_program(rng)
    registry = ViewRegistry(program, base)
    oracle = registry.base_database()
    for _batch in range(rng.randrange(1, 4)):
        delta = random_delta(rng, oracle)
        mirror_apply(oracle, delta)
        registry.apply(delta)
    reference = evaluate_program(program, oracle)
    for name in registry.order:
        assert registry.base_provenance(name) == reference.base_provenance(name), (
            seed, name
        )


def test_property_run_covers_kill_and_revive():
    """At least one seeded run must exercise a kill followed by a
    revival, so the property above cannot silently stop covering it."""
    kills = revivals = 0
    for seed in range(60):
        rng = random.Random(seed * 7919 + 13)
        base = random_database(
            RELATIONS, DOMAIN, n_facts=rng.randrange(4, 9), seed=seed
        )
        program = random_program(rng)
        registry = ViewRegistry(program, base)
        oracle = registry.base_database()
        dead_rows = set()
        for _batch in range(rng.randrange(1, 4)):
            delta = random_delta(rng, oracle)
            mirror_apply(oracle, delta)
            report = registry.apply(delta)
            for name, change in report.changes.items():
                for row in change.deleted:
                    dead_rows.add((name, row))
                    kills += 1
                for row in change.inserted:
                    if (name, row) in dead_rows:
                        revivals += 1
    assert kills > 0 and revivals > 0, (kills, revivals)

"""The public API surface: everything advertised exists and works."""


import repro


class TestAllExports:
    def test_every_name_in_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.5.0"

    def test_subpackage_alls_resolve(self):
        import repro.aggregate
        import repro.algebra
        import repro.apps
        import repro.hom
        import repro.incremental
        import repro.minimize
        import repro.obs
        import repro.order
        import repro.paperdata
        import repro.query
        import repro.semiring
        import repro.utils
        import repro.views

        for module in (
            repro.aggregate,
            repro.algebra,
            repro.apps,
            repro.hom,
            repro.incremental,
            repro.minimize,
            repro.obs,
            repro.order,
            repro.paperdata,
            repro.query,
            repro.semiring,
            repro.utils,
            repro.views,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestReadmeSnippet:
    """The README quickstart must keep working verbatim."""

    def test_quickstart_block(self):
        from repro import (
            AnnotatedDatabase,
            core_provenance_table,
            evaluate,
            min_prov,
            parse_query,
        )

        db = AnnotatedDatabase.from_dict({"R": {
            ("a", "a"): "s1", ("a", "b"): "s2",
            ("b", "a"): "s3", ("b", "b"): "s4",
        }})
        query = parse_query("ans(x) :- R(x, y), R(y, x)")
        results = evaluate(query, db)
        assert str(results[("a",)]) == "s1^2 + s2*s3"
        minimal = min_prov(query)
        texts = sorted(str(a) for a in minimal.adjuncts)
        assert texts == [
            "ans(v1) :- R(v1, v1)",
            "ans(v1) :- R(v1, v2), R(v2, v1), v1 != v2",
        ]
        core = core_provenance_table(results, db)
        assert str(core[("a",)]) == "s1 + s2*s3"
        assert str(core[("b",)]) == "s2*s3 + s4"

    def test_docstring_quickstart(self):
        """The module docstring's snippet (smoke form)."""
        from repro import AnnotatedDatabase, evaluate, min_prov, parse_query

        db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
        query = parse_query("ans(x) :- R(x, y), R(y, x)")
        assert evaluate(query, db)
        assert min_prov(query)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_parse_error_position_default(self):
        from repro.errors import ParseError

        assert ParseError("x").position == -1

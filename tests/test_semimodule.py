"""The aggregation monoids and the tensor product ``N[X] ⊗ M``."""

import pytest

from repro.algebra.monoid import (
    ABSENT,
    MONOIDS,
    CountMonoid,
    MaxMonoid,
    MinMonoid,
    SumMonoid,
    monoid_for,
)
from repro.algebra.semimodule import SemimoduleElement
from repro.errors import EvaluationError
from repro.semiring.polynomial import Monomial, Polynomial

SUM = SumMonoid()
COUNT = CountMonoid()
MIN = MinMonoid()
MAX = MaxMonoid()


class TestMonoids:
    @pytest.mark.parametrize("op", sorted(MONOIDS))
    def test_monoid_laws_on_samples(self, op):
        monoid = monoid_for(op)
        samples = [1, 2, 3, 7]
        for a in samples:
            assert monoid.combine(a, monoid.identity) == a
            assert monoid.combine(monoid.identity, a) == a
            for b in samples:
                assert monoid.combine(a, b) == monoid.combine(b, a)
                for c in samples:
                    assert monoid.combine(monoid.combine(a, b), c) == \
                        monoid.combine(a, monoid.combine(b, c))

    @pytest.mark.parametrize("op", sorted(MONOIDS))
    def test_action_is_iterated_combine(self, op):
        monoid = monoid_for(op)
        for n in range(5):
            assert monoid.act(n, 3) == monoid.fold([3] * n)

    def test_action_shapes(self):
        assert SUM.act(3, 5) == 15
        assert COUNT.act(4, 1) == 4
        assert MIN.act(3, 5) == 5
        assert MAX.act(0, 5) is ABSENT
        assert SUM.act(0, 5) == 0

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(EvaluationError):
            SUM.act(-1, 5)
        with pytest.raises(EvaluationError):
            MIN.act(-1, 5)

    def test_lattice_monoids_pick_extremes(self):
        assert MIN.fold([4, 2, 9]) == 2
        assert MAX.fold([4, 2, 9]) == 9
        assert MIN.fold([]) is ABSENT
        assert MIN.combine(ABSENT, 7) == 7
        assert MAX.combine(7, ABSENT) == 7

    def test_sum_validates_values(self):
        with pytest.raises(EvaluationError):
            SUM.validate("not a number")
        SUM.validate(2.5)
        SUM.validate(4)

    def test_min_max_accept_orderable_values(self):
        MIN.validate("alpha")
        assert MIN.fold(["beta", "alpha"]) == "alpha"
        assert MAX.fold(["beta", "alpha"]) == "beta"

    def test_unknown_operator(self):
        with pytest.raises(EvaluationError):
            monoid_for("median")

    def test_linearity_flags(self):
        assert SUM.linear and COUNT.linear
        assert not MIN.linear and not MAX.linear


def tensor(symbol, value, monoid=SUM):
    return SemimoduleElement.tensor(symbol, value, monoid)


class TestSemimoduleElement:
    def test_equal_values_merge_annotations(self):
        # (p ⊗ m) + (p' ⊗ m) ≡ (p + p') ⊗ m, the eager congruence.
        e = tensor("s1", 5) + tensor("s2", 5)
        assert e.terms() == {5: Polynomial.parse("s1 + s2")}

    def test_trivial_tensors_vanish(self):
        assert SemimoduleElement(SUM, {5: Polynomial.zero()}).is_zero()
        assert SemimoduleElement(SUM, {0: Polynomial.parse("s1")}).is_zero()
        assert SemimoduleElement(MIN, {}).is_zero()

    def test_monoid_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            tensor("s1", 5, SUM) + tensor("s2", 5, MIN)

    def test_annotation_forms(self):
        from_str = tensor("s1", 5)
        from_monomial = SemimoduleElement.tensor(Monomial(["s1"]), 5, SUM)
        from_poly = SemimoduleElement.tensor(Polynomial.parse("s1"), 5, SUM)
        assert from_str == from_monomial == from_poly

    def test_scale_is_the_k_action(self):
        e = tensor("s1", 5) + tensor("s2", 2)
        scaled = e.scale("s9")
        assert scaled.terms() == {
            5: Polynomial.parse("s1*s9"),
            2: Polynomial.parse("s2*s9"),
        }

    def test_specialize_counts_multiplicities(self):
        e = SemimoduleElement(SUM, {5: Polynomial.parse("2*s1 + s2")})
        assert e.specialize({"s1": 1, "s2": 1}) == 15
        assert e.specialize({"s1": 1, "s2": 0}) == 10
        assert e.specialize({"s1": 3, "s2": 0}) == 30
        assert e.specialize({"s1": 0, "s2": 0}) == 0

    def test_specialize_lattice_ignores_multiplicity(self):
        e = SemimoduleElement(
            MIN, {5: Polynomial.parse("2*s1"), 2: Polynomial.parse("s2")}
        )
        assert e.specialize({"s1": 5, "s2": 1}) == 2
        assert e.specialize({"s1": 1, "s2": 0}) == 5
        assert e.specialize({"s1": 0, "s2": 0}) is ABSENT

    def test_specialize_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            tensor("s1", 5).specialize({})

    def test_condense_merges_equal_annotations(self):
        e = tensor("s1", 4, MIN) + tensor("s1", 9, MIN)
        condensed = e.condense()
        assert condensed.terms() == {4: Polynomial.parse("s1")}
        # Specialization is invariant under the congruence.
        for bit in (0, 1):
            assert condensed.specialize({"s1": bit}) == e.specialize(
                {"s1": bit}
            )

    def test_condense_sum_distributes(self):
        e = tensor("s1", 4) + tensor("s1", 9)
        condensed = e.condense()
        assert condensed.terms() == {13: Polynomial.parse("s1")}
        for n in range(3):
            assert condensed.specialize({"s1": n}) == e.specialize({"s1": n})

    def test_map_symbols_and_support(self):
        e = tensor("s1", 5) + tensor("s2", 2)
        renamed = e.map_symbols({"s1": "t1"})
        assert renamed.support() == frozenset({"t1", "s2"})
        assert e.support() == frozenset({"s1", "s2"})

    def test_map_polynomials_drops_zeros(self):
        e = tensor("s1", 5) + tensor("s2", 2)
        filtered = e.map_polynomials(
            lambda p: p if "s1" in p.support() else Polynomial.zero()
        )
        assert filtered.terms() == {5: Polynomial.parse("s1")}

    def test_str_and_repr(self):
        e = tensor("s1", 5) + tensor("s2", 5) + tensor("s3", 2)
        assert str(e) == "sum[s3⊗2 + (s1 + s2)⊗5]"
        assert str(SemimoduleElement.zero(MAX)) == "max[0]"
        assert "sum[" in repr(e)

    def test_hash_and_eq(self):
        a = tensor("s1", 5) + tensor("s2", 2)
        b = tensor("s2", 2) + tensor("s1", 5)
        assert a == b and hash(a) == hash(b)
        assert a != tensor("s1", 5)
        assert a != tensor("s1", 5, MIN) + tensor("s2", 2, MIN)

    def test_tensor_count_tracks_expanded_form(self):
        e = SemimoduleElement(SUM, {5: Polynomial.parse("2*s1 + s2")})
        assert e.tensor_count() == 3

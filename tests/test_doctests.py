"""Run every doctest in the package as part of the normal suite.

Doctests double as the reference examples in the API documentation;
collecting them here keeps ``pytest tests/`` sufficient to verify the
whole repository.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, "{} doctest(s) failed in {}".format(
        results.failed, module_name
    )

"""End-to-end integration tests across the whole stack.

Each test exercises a realistic workflow: load data, evaluate with
provenance (both engines), minimize, compute core provenance off-line,
and feed the result to an application.
"""

import pytest

from repro import (
    AnnotatedDatabase,
    SQLiteDatabase,
    core_provenance_table,
    evaluate,
    is_equivalent,
    min_prov,
    parse_query,
)
from repro.apps.deletion import propagate_deletion
from repro.apps.trust import is_trusted
from repro.semiring.polynomial import Polynomial


class TestCuratedDatabaseWorkflow:
    """A small curated-data scenario: flights with codeshares."""

    @pytest.fixture
    def flights(self):
        db = AnnotatedDatabase()
        db.add("Flight", ("TLV", "ATH"))      # s1
        db.add("Flight", ("ATH", "TLV"))      # s2
        db.add("Flight", ("ATH", "ATH"))      # s3 (sightseeing loop)
        db.add("Flight", ("JFK", "ATH"))      # s4
        return db

    def test_round_trip_query_full_cycle(self, flights):
        # Cities with a round trip: the Qconj pattern of Figure 1.
        query = parse_query("ans(x) :- Flight(x, y), Flight(y, x)")
        results = evaluate(query, flights)
        assert set(results) == {("TLV",), ("ATH",)}
        # ATH has two derivations: the loop (s3 twice) and TLV leg.
        assert results[("ATH",)] == Polynomial.parse("s3^2 + s2*s1")

        # Rewrite to the p-minimal form and re-evaluate: same answers,
        # terser provenance for ATH (the loop used once).
        minimal = min_prov(query)
        assert is_equivalent(query, minimal)
        minimal_results = evaluate(minimal, flights)
        assert set(minimal_results) == set(results)
        assert minimal_results[("ATH",)] == Polynomial.parse("s3 + s1*s2")

        # Or compute the core off-line, without rewriting:
        core = core_provenance_table(results, flights)
        assert core == minimal_results

    def test_trust_and_deletion_on_core(self, flights):
        query = parse_query("ans(x) :- Flight(x, y), Flight(y, x)")
        results = evaluate(query, flights)
        core = core_provenance_table(results, flights)
        # Trust only the loop: ATH remains trusted, TLV does not.
        assert is_trusted(core[("ATH",)], ["s3"])
        assert not is_trusted(core[("TLV",)], ["s3"])
        # Deleting the loop keeps ATH (via the TLV leg).
        maintained = propagate_deletion(core, ["s3"])
        assert set(maintained) == {("TLV",), ("ATH",)}
        # Deleting one leg of the round trip kills TLV.
        maintained = propagate_deletion(core, ["s1"])
        assert set(maintained) == {("ATH",)}


class TestSQLiteWorkflow:
    def test_full_pipeline_on_sqlite(self):
        db = AnnotatedDatabase.from_rows(
            {"Edge": [(1, 2), (2, 1), (2, 3), (3, 1)]}
        )
        store = SQLiteDatabase.from_annotated(db)
        query = parse_query("ans(x, z) :- Edge(x, y), Edge(y, z)")
        via_sql = store.evaluate(query)
        in_memory = evaluate(query, db)
        assert via_sql == in_memory
        core = core_provenance_table(via_sql, db)
        for output, polynomial in core.items():
            for monomial in polynomial.monomials():
                assert monomial.is_linear()
        store.close()

    def test_sql_text_is_inspectable(self):
        store = SQLiteDatabase()
        query = parse_query("ans(x) :- Edge(x, y), Edge(y, x), x != y")
        text = store.explain(query)
        assert "FROM \"Edge\" t0, \"Edge\" t1" in text
        assert "<>" in text


class TestProgramWorkflow:
    def test_program_with_multiple_views(self):
        from repro import parse_program

        program = parse_program(
            """
            # reachability patterns over a curated graph
            pairs(x, y) :- Edge(x, y), Edge(y, x), x != y
            pairs(x, x) :- Edge(x, x)
            loops(x) :- Edge(x, x)
            """
        )
        assert set(program) == {"pairs", "loops"}
        db = AnnotatedDatabase.from_rows({"Edge": [("a", "b"), ("b", "a"), ("c", "c")]})
        pairs = evaluate(program["pairs"], db)
        assert set(pairs) == {("a", "b"), ("b", "a"), ("c", "c")}
        loops = evaluate(program["loops"], db)
        assert set(loops) == {("c",)}

    def test_union_minimization_end_to_end(self):
        query = parse_query(
            """
            ans(x) :- R(x, y), R(y, x)
            ans(x) :- R(x, x)
            ans(x) :- R(x, x), R(x, x)
            """
        )
        minimal = min_prov(query)
        assert is_equivalent(query, minimal)
        assert len(minimal.adjuncts) == 2

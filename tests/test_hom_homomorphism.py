"""Unit tests for homomorphisms (Def. 2.10) and their refinements."""


from repro.hom.homomorphism import (
    automorphisms,
    count_automorphisms,
    find_homomorphism,
    has_homomorphism,
    has_surjective_homomorphism,
    homomorphisms,
    is_isomorphic,
)
from repro.query.parser import parse_query
from repro.query.terms import Variable


class TestExistence:
    def test_example_2_11_direction_that_exists(self, fig1):
        """There is a homomorphism Qconj -> Q2 mapping both atoms to
        R(x, x)."""
        hom = find_homomorphism(fig1.q_conj, fig1.q2)
        assert hom is not None
        mapping = hom.mapping()
        assert mapping[Variable("x")] == Variable("x")
        assert mapping[Variable("y")] == Variable("x")

    def test_example_2_11_direction_that_does_not(self, fig1):
        """No homomorphism Q2 -> Qconj (x would need two images)."""
        assert not has_homomorphism(fig1.q2, fig1.q_conj)

    def test_head_must_be_respected(self):
        q1 = parse_query("ans(x) :- R(x, y)")
        q2 = parse_query("ans(y) :- R(x, y)")
        # q1 -> q2 must map x (head) to y (head): image R(y, ?) needs an
        # atom R(y, _) — only R(x, y) exists, so no homomorphism.
        assert not has_homomorphism(q1, q2)

    def test_constants_map_to_themselves(self):
        source = parse_query("ans() :- R('a')")
        target_same = parse_query("ans() :- R('a')")
        target_other = parse_query("ans() :- R('b')")
        target_var = parse_query("ans() :- R(x)")
        assert has_homomorphism(source, target_same)
        assert not has_homomorphism(source, target_other)
        assert not has_homomorphism(source, target_var)

    def test_variable_may_map_to_constant(self):
        source = parse_query("ans() :- R(x)")
        target = parse_query("ans() :- R('a')")
        assert has_homomorphism(source, target)

    def test_arity_mismatch(self):
        assert not has_homomorphism(
            parse_query("ans(x) :- R(x)"), parse_query("ans() :- R(x)")
        )

    def test_diseq_atoms_must_map_to_diseq_atoms(self):
        source = parse_query("ans() :- R(x, y), x != y")
        target_with = parse_query("ans() :- R(u, w), u != w")
        target_without = parse_query("ans() :- R(u, w)")
        assert has_homomorphism(source, target_with)
        assert not has_homomorphism(source, target_without)

    def test_diseq_collapse_forbidden(self):
        source = parse_query("ans() :- R(x, y), x != y")
        target = parse_query("ans() :- R(u, u)")
        assert not has_homomorphism(source, target)

    def test_diseq_to_distinct_constants_accepted(self):
        source = parse_query("ans() :- R(x, y), x != y")
        target = parse_query("ans() :- R('a', 'b')")
        assert has_homomorphism(source, target)


class TestSurjectivity:
    def test_example_3_4(self):
        """Q has a hom from Q' but no surjective one; the reverse
        direction has a surjective hom."""
        q = parse_query("ans() :- R(x), R(y)")
        q_prime = parse_query("ans() :- R(x)")
        assert has_homomorphism(q_prime, q)
        assert not has_surjective_homomorphism(q_prime, q)
        assert has_surjective_homomorphism(q, q_prime)

    def test_theorem_3_11_witness(self, fig1):
        """Qconj -> Q1 and Qconj -> Q2 are surjective (Thm. 3.11 proof)."""
        assert has_surjective_homomorphism(fig1.q_conj, fig1.q1)
        assert has_surjective_homomorphism(fig1.q_conj, fig1.q2)

    def test_surjective_hom_enumeration_subset(self, fig1):
        surjective = list(
            homomorphisms(fig1.q_conj, fig1.q2, surjective=True)
        )
        total = list(homomorphisms(fig1.q_conj, fig1.q2))
        assert set(surjective) <= set(total)
        assert surjective


class TestAutomorphisms:
    def test_single_atom_identity_only(self):
        assert count_automorphisms(parse_query("ans(x) :- R(x, y)")) == 1

    def test_triangle_has_three(self):
        cycle = parse_query(
            "ans() :- R(x, y), R(y, z), R(z, x), x != y, y != z, x != z"
        )
        assert count_automorphisms(cycle) == 3

    def test_triangle_without_diseqs_still_three(self):
        # Rotations remain the only atom bijections.
        assert count_automorphisms(parse_query("ans() :- R(x, y), R(y, z), R(z, x)")) == 3

    def test_symmetric_pair(self):
        query = parse_query("ans() :- R(x, y), R(y, x), x != y")
        assert count_automorphisms(query) == 2

    def test_head_pins_variables(self):
        query = parse_query("ans(x) :- R(x, y), R(y, x), x != y")
        assert count_automorphisms(query) == 1

    def test_independent_atoms(self):
        query = parse_query("ans() :- R(x), R(y)")
        assert count_automorphisms(query) == 2

    def test_automorphisms_are_bijections(self):
        for auto in automorphisms(parse_query("ans() :- R(x), R(y), S(x)")):
            assert auto.is_atom_injective()


class TestIsomorphism:
    def test_renaming_is_isomorphic(self):
        q1 = parse_query("ans(x) :- R(x, y), x != y")
        q2 = parse_query("ans(u) :- R(u, w), u != w")
        assert is_isomorphic(q1, q2)

    def test_different_diseqs_not_isomorphic(self):
        q1 = parse_query("ans() :- R(x, y), x != y")
        q2 = parse_query("ans() :- R(x, y)")
        assert not is_isomorphic(q1, q2)

    def test_different_sizes_not_isomorphic(self):
        q1 = parse_query("ans() :- R(x)")
        q2 = parse_query("ans() :- R(x), R(y)")
        assert not is_isomorphic(q1, q2)

    def test_homomorphic_but_not_isomorphic(self, fig1):
        assert not is_isomorphic(fig1.q_conj, fig1.q2)

    def test_figure2_queries_pairwise_non_isomorphic(self, fig2):
        queries = [fig2.q_no_pmin, fig2.q_alt, fig2.q_alt2, fig2.q_alt3]
        for i, a in enumerate(queries):
            for b in queries[i + 1:]:
                assert not is_isomorphic(a, b)

    def test_constant_identity(self):
        q1 = parse_query("ans() :- R(x, 'a')")
        q2 = parse_query("ans() :- R(y, 'a')")
        q3 = parse_query("ans() :- R(y, 'b')")
        assert is_isomorphic(q1, q2)
        assert not is_isomorphic(q1, q3)

"""Unit tests for the SQLite backend and SQL compilation."""

import pytest

from repro.db.instance import AnnotatedDatabase
from repro.db.sqlite_backend import SQLiteDatabase
from repro.engine.sql_compile import compile_cq_to_sql
from repro.errors import EvaluationError, SchemaError, UnsupportedQueryError
from repro.query.parser import parse_query
from repro.semiring.polynomial import Polynomial


class TestCompilation:
    def test_single_atom(self):
        compiled = compile_cq_to_sql(parse_query("ans(x) :- R(x, y)"))
        assert compiled.sql == 'SELECT t0.prov, t0.c0 FROM "R" t0'

    def test_join_equality(self):
        compiled = compile_cq_to_sql(parse_query("ans(x) :- R(x, y), S(y)"))
        assert "t1.c0 = t0.c1" in compiled.sql

    def test_repeated_variable_in_one_atom(self):
        compiled = compile_cq_to_sql(parse_query("ans(x) :- R(x, x)"))
        assert "t0.c1 = t0.c0" in compiled.sql

    def test_constants_parameterized(self):
        compiled = compile_cq_to_sql(parse_query("ans(x) :- R(x, 'a')"))
        assert "t0.c1 = ?" in compiled.sql
        assert compiled.parameters == ("a",)

    def test_disequality(self):
        compiled = compile_cq_to_sql(parse_query("ans(x) :- R(x, y), x != y"))
        assert "<>" in compiled.sql

    def test_constant_in_head(self):
        compiled = compile_cq_to_sql(parse_query("ans('k', x) :- R(x)"))
        assert compiled.head_slots[0] == ("const", "k")

    def test_boolean_query_projects_only_prov(self):
        compiled = compile_cq_to_sql(parse_query("ans() :- R(x)"))
        assert compiled.sql.startswith("SELECT t0.prov FROM")

    def test_bad_relation_name_rejected(self):
        from repro.query.atoms import Atom
        from repro.query.cq import ConjunctiveQuery
        from repro.query.terms import Variable

        query = ConjunctiveQuery(
            Atom("ans", ()), [Atom("bad name", (Variable("x"),))]
        )
        with pytest.raises(UnsupportedQueryError):
            compile_cq_to_sql(query)


class TestSQLiteEvaluation:
    def test_matches_table3(self, fig1, db_table2):
        store = SQLiteDatabase.from_annotated(db_table2)
        result = store.evaluate(fig1.q_union)
        assert result[("a",)] == Polynomial.parse("s2*s3 + s1")
        assert result[("b",)] == Polynomial.parse("s3*s2 + s4")

    def test_boolean_query(self, db_table2):
        store = SQLiteDatabase.from_annotated(db_table2)
        result = store.evaluate(parse_query("ans() :- R(x, x)"))
        assert result[()] == Polynomial.parse("s1 + s4")

    def test_missing_relation_contributes_nothing(self, db_table2):
        store = SQLiteDatabase.from_annotated(db_table2)
        assert store.evaluate(parse_query("ans(x) :- Nope(x)")) == {}

    def test_provenance_of_absent_tuple_is_zero(self, db_table2):
        store = SQLiteDatabase.from_annotated(db_table2)
        query = parse_query("ans(x) :- R(x, x)")
        assert store.provenance(query, ("zzz",)).is_zero()

    def test_integer_values(self):
        db = AnnotatedDatabase.from_rows({"N": [(1, 2), (2, 3)]})
        store = SQLiteDatabase.from_annotated(db)
        result = store.evaluate(parse_query("ans(x, z) :- N(x, y), N(y, z)"))
        assert result == {(1, 3): Polynomial.parse("s1*s2")}

    def test_unstorable_value_raises(self):
        store = SQLiteDatabase()
        store.create_relation("R", 1)
        with pytest.raises(EvaluationError):
            store.insert("R", ((1, 2),), "s1")

    def test_create_relation_arity_conflict(self):
        store = SQLiteDatabase()
        store.create_relation("R", 1)
        with pytest.raises(SchemaError):
            store.create_relation("R", 2)

    def test_explain_returns_sql(self, fig1):
        store = SQLiteDatabase()
        text = store.explain(fig1.q_union)
        assert "SELECT" in text and "UNION ALL" in text

    def test_context_manager(self, db_table2):
        with SQLiteDatabase.from_annotated(db_table2) as store:
            assert store.relations() == {"R"}

"""Incremental maintenance of aggregate views.

The guarantee mirrors ``test_incremental.py``: for ≥ 50 seeded-random
program/delta-batch pairs — aggregate views over base relations *and*
over plain views, with inserts, deletes, retags, group kills and
revivals — the maintained registry matches full re-evaluation on
base-expanded provenance and on every semimodule annotation.
"""

import random

import pytest

from repro.aggregate import evaluate_aggregate
from repro.db.generators import random_database
from repro.db.instance import AnnotatedDatabase
from repro.errors import EvaluationError
from repro.incremental.delta import Delta
from repro.incremental.maintain import check_consistency, maintain
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program
from repro.views.program import evaluate_program


def sales_db():
    return AnnotatedDatabase.from_dict(
        {
            "R": {("a", "b"): "s1", ("b", "c"): "s2", ("a", "c"): "s3"},
            "S": {("a", 5): "s4", ("b", 3): "s5", ("c", 2): "s6"},
        }
    )


PROGRAM = """
V(x, z) :- R(x, y), R(y, z)
T(c, sum(v), min(v), count(*)) :- R(c, y), S(y, v)
W(x, count(*)) :- V(x, z), S(z, v)
"""


class TestAggregateRegistry:
    def registry(self):
        return ViewRegistry(parse_program(PROGRAM), sales_db())

    def test_materialization_matches_evaluate_program(self):
        registry = self.registry()
        assert registry.aggregate_names == {"T", "W"}
        reference = evaluate_program(parse_program(PROGRAM), sales_db())
        assert set(registry.view("T")) == set(reference.aggregates["T"])
        assert registry.base_aggregates("T") == reference.base_aggregates(
            "T"
        )
        assert check_consistency(registry).consistent

    def test_insert_updates_groups(self):
        registry = self.registry()
        report = registry.apply(Delta(inserts=[("S", ("c", 7))]))
        assert ("b",) in report.changes["T"].updated
        values = registry.view("T")[("b",)].specialize(lambda s: 1)
        assert values == (2 + 7, 2, 2)  # sum, min, count over y=c
        assert check_consistency(registry).consistent

    def test_insert_creates_group(self):
        registry = self.registry()
        report = registry.apply(Delta(inserts=[("R", ("c", "a"))]))
        assert ("c",) in report.changes["T"].inserted
        assert check_consistency(registry).consistent

    def test_delete_updates_and_kills_groups(self):
        registry = self.registry()
        # T(b) derives only through S(c, 2) [s6]: killing it kills the group.
        report = registry.apply(Delta(deletes=[("S", ("c", 2))]))
        assert ("b",) in report.changes["T"].deleted
        assert ("b",) not in registry.view("T")
        assert check_consistency(registry).consistent

    def test_group_revival_in_one_batch(self):
        registry = self.registry()
        registry.apply(
            Delta(deletes=[("S", ("c", 2))], inserts=[("S", ("c", 8))])
        )
        assert registry.view("T")[("b",)].specialize(lambda s: 1) == (
            8, 8, 1
        )
        assert check_consistency(registry).consistent

    def test_retag_rewrites_semimodule_annotations(self):
        registry = self.registry()
        registry.apply(Delta(retags=[("S", ("b", 3), "t9")]))
        element = registry.view("T")[("a",)].aggregates[0]
        assert "t9" in element.support()
        assert "s5" not in element.support()
        assert check_consistency(registry).consistent

    def test_aggregate_over_plain_view_follows_view_changes(self):
        registry = self.registry()
        # New R edge creates V tuples, which feed the aggregate W.
        report = registry.apply(Delta(inserts=[("R", ("c", "a"))]))
        assert not report.changes["W"].is_empty()
        assert check_consistency(registry).consistent
        # Killing the edge rolls W back.
        registry.apply(Delta(deletes=[("R", ("c", "a"))]))
        assert check_consistency(registry).consistent

    def test_aggregate_views_are_terminal(self):
        program = parse_program(
            "T(x, sum(v)) :- S(x, v)\nU(x) :- T(x, y)"
        )
        with pytest.raises(EvaluationError):
            ViewRegistry(program, sales_db())
        with pytest.raises(EvaluationError):
            evaluate_program(program, sales_db())

    def test_pure_aggregate_program(self):
        db = sales_db()
        registry = ViewRegistry(
            parse_program("T(sum(v)) :- S(x, v)"), db
        )
        assert registry.view("T")[()].specialize(lambda s: 1) == (10,)
        registry.apply(Delta(deletes=[("S", ("a", 5))]))
        assert registry.view("T")[()].specialize(lambda s: 1) == (5,)
        assert check_consistency(registry).consistent

    def test_maintain_loop_audits_aggregates(self):
        deltas = [
            Delta(inserts=[("S", ("a", 1))]),
            Delta(deletes=[("R", ("a", "b"))]),
        ]
        registry, reports = maintain(
            parse_program(PROGRAM), sales_db(), deltas, check_every=1
        )
        assert len(reports) == 2

    def test_stats_count_aggregate_groups(self):
        registry = self.registry()
        assert registry.stats()["view_tuples"] >= len(registry.view("T"))

    def test_as_evaluation_exports_aggregates(self):
        evaluation = self.registry().as_evaluation()
        assert set(evaluation.aggregates) == {"T", "W"}
        assert "T" not in evaluation.views


# ----------------------------------------------------------------------
# The equivalence property: incremental ≡ recompute, with aggregates
# ----------------------------------------------------------------------
RELATIONS = {"R": 2, "S": 2}
DOMAIN = [0, 1, 2]


def random_program(rng):
    op = rng.choice(["sum", "count", "min", "max"])
    program_text = "T(x, {op}(v), count(*)) :- R(x, y), S(y, v)".format(op=op)
    if rng.random() < 0.5:
        program_text += "\nV(x, z) :- R(x, y), R(y, z)"
        if rng.random() < 0.6:
            program_text += "\nW(x, {op}(v)) :- V(x, z), S(z, v)".format(
                op=rng.choice(["sum", "min", "max"])
            )
    if rng.random() < 0.3:
        program_text += "\nU({op}(v)) :- S(x, v)".format(
            op=rng.choice(["sum", "count"])
        )
    return parse_program(program_text)


def random_delta(rng, db):
    present = [
        (relation, row)
        for relation in sorted(db.relations())
        for row in db.rows(relation)
    ]
    universe = [("R", (x, y)) for x in DOMAIN for y in DOMAIN]
    universe += [("S", (x, v)) for x in DOMAIN for v in DOMAIN]
    deletes = rng.sample(present, min(len(present), rng.randrange(0, 3)))
    deleted = set(deletes)
    absent = [fact for fact in universe if not db.contains(*fact)]
    candidates = absent + list(deleted)
    inserts = rng.sample(candidates, min(len(candidates), rng.randrange(0, 3)))
    retags = []
    for relation, row in rng.sample(present, min(len(present), 1)):
        if (relation, row) not in deleted and rng.random() < 0.4:
            retags.append(
                (relation, row, "rt{}".format(rng.randrange(10**6)))
            )
    return Delta(inserts=inserts, deletes=deletes, retags=retags)


@pytest.mark.parametrize("seed", range(52))
def test_aggregate_incremental_equals_recompute(seed):
    rng = random.Random(seed * 9973 + 3)
    db = random_database(
        RELATIONS, DOMAIN, n_facts=rng.randrange(4, 9), seed=seed
    )
    program = random_program(rng)
    registry = ViewRegistry(program, db)
    for _batch in range(3):
        delta = random_delta(rng, registry.base_database())
        registry.apply(delta)
        audit = check_consistency(registry)
        assert audit.consistent, "seed {}: {}".format(
            seed, audit.mismatches[:3]
        )


def test_property_run_covers_group_kill_and_revive():
    """At least one seeded run must kill an aggregate group and at
    least one must re-create one, or the property is vacuous."""
    killed = revived = False
    for seed in range(52):
        rng = random.Random(seed * 9973 + 3)
        db = random_database(
            RELATIONS, DOMAIN, n_facts=rng.randrange(4, 9), seed=seed
        )
        program = random_program(rng)
        registry = ViewRegistry(program, db)
        seen_dead = set()
        for _batch in range(3):
            delta = random_delta(rng, registry.base_database())
            report = registry.apply(delta)
            for name in registry.aggregate_names:
                change = report.changes[name]
                for row in change.deleted:
                    killed = True
                    seen_dead.add((name, row))
                for row in change.inserted:
                    if (name, row) in seen_dead:
                        revived = True
    assert killed and revived


def test_registry_aggregates_match_direct_evaluation():
    """After arbitrary churn the maintained aggregate equals a fresh
    evaluate_aggregate over the current base."""
    registry = ViewRegistry(
        parse_program("T(x, sum(v)) :- R(x, y), S(y, v)"), sales_db()
    )
    registry.apply(Delta(inserts=[("R", (0, 1)), ("S", (1, 4))]))
    registry.apply(Delta(deletes=[("S", ("b", 3))]))
    fresh = evaluate_aggregate(
        parse_program("T(x, sum(v)) :- R(x, y), S(y, v)")["T"],
        registry.base_database(),
    )
    assert registry.base_aggregates("T") == fresh

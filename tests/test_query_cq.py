"""Unit tests for conjunctive queries (Def. 2.1) and completeness."""

import pytest

from repro.errors import QueryConstructionError
from repro.query.atoms import Disequality
from repro.query.build import atom, c, cq, diseq
from repro.query.parser import parse_query
from repro.query.terms import Constant, Variable


class TestWellFormedness:
    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(QueryConstructionError):
            cq(["z"], [atom("R", "x")])

    def test_diseq_variable_must_occur_in_body(self):
        with pytest.raises(QueryConstructionError):
            cq(["x"], [atom("R", "x")], [diseq("x", "z")])

    def test_needs_at_least_one_atom(self):
        with pytest.raises(QueryConstructionError):
            cq([], [])

    def test_constant_in_head_allowed(self):
        query = cq([c("a"), "x"], [atom("R", "x")])
        assert query.arity == 2

    def test_boolean_query(self):
        assert cq([], [atom("R", "x")]).is_boolean()


class TestAccessors:
    def test_variables_and_constants(self):
        query = parse_query("ans(x) :- R(x, y), S(y, 'c'), x != 'd'")
        assert {v.name for v in query.variables()} == {"x", "y"}
        assert {k.value for k in query.constants()} == {"c", "d"}

    def test_relations(self):
        query = parse_query("ans(x) :- R(x), S(x), R(x)")
        assert query.relations() == {"R", "S"}

    def test_size(self):
        assert parse_query("ans(x) :- R(x), S(x)").size() == 2

    def test_duplicate_atom_indices(self):
        query = parse_query("ans(x) :- R(x), S(x), R(x)")
        assert query.duplicate_atom_indices() == [2]

    def test_arguments(self):
        query = parse_query("ans(x) :- R(x, 'a')")
        assert query.arguments() == {Variable("x"), Constant("a")}


class TestCompleteness:
    def test_example_2_3(self):
        """Q is incomplete, Q' is complete (the paper's Example 2.3)."""
        q = parse_query("ans(x, y) :- R(x, y), S(y, 'c'), x != y, y != 'c'")
        q_prime = parse_query(
            "ans(x, y) :- R(x, y), S(y, 'c'), x != y, y != 'c', x != 'c'"
        )
        assert not q.is_complete()
        assert q_prime.is_complete()

    def test_completeness_wrt_extra_constants(self):
        query = parse_query("ans(x) :- R(x)")
        complete = query.completion_of([Constant("a")])
        assert complete.is_complete([Constant("a")])
        assert not query.is_complete([Constant("a")])

    def test_single_variable_no_constants_is_complete(self):
        assert parse_query("ans(x) :- R(x)").is_complete()

    def test_completion_of_adds_all_disequalities(self):
        query = parse_query("ans(x) :- R(x, y)")
        complete = query.completion_of()
        assert complete.is_complete()
        assert Disequality(Variable("x"), Variable("y")) in complete.disequalities


class TestTransformations:
    def test_substitute(self):
        query = parse_query("ans(x) :- R(x, y)")
        result = query.substitute({Variable("y"): Constant("a")})
        assert str(result) == "ans(x) :- R(x, 'a')"

    def test_without_atom_drops_dangling_diseq(self):
        query = parse_query("ans(x) :- R(x), S(y), x != y")
        result = query.without_atom(1)
        assert result.disequalities == frozenset()
        assert result.size() == 1

    def test_without_atom_keeps_needed_diseq(self):
        query = parse_query("ans(x) :- R(x, y), S(x), x != y")
        result = query.without_atom(1)
        assert len(result.disequalities) == 1

    def test_deduplicate_atoms(self):
        query = parse_query("ans(x) :- R(x), R(x), S(x)")
        assert query.deduplicate_atoms().size() == 2

    def test_canonical_rename(self):
        query = parse_query("ans(b) :- R(b, q), S(q)")
        renamed = query.canonical_rename()
        assert str(renamed) == "ans(x1) :- R(x1, x2), S(x2)"

    def test_rename_apart(self):
        query = parse_query("ans(x) :- R(x, y)")
        renamed = query.rename_apart(["x"])
        assert Variable("x") not in renamed.variables()
        assert renamed.size() == 1


class TestEquality:
    def test_equal_up_to_atom_order(self):
        q1 = parse_query("ans(x) :- R(x), S(x)")
        q2 = parse_query("ans(x) :- S(x), R(x)")
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_atom_multiplicity_matters(self):
        q1 = parse_query("ans(x) :- R(x)")
        q2 = parse_query("ans(x) :- R(x), R(x)")
        assert q1 != q2

    def test_not_equal_up_to_renaming(self):
        q1 = parse_query("ans(x) :- R(x)")
        q2 = parse_query("ans(y) :- R(y)")
        assert q1 != q2  # use is_isomorphic for renaming-equality

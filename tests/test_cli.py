"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import load_database, load_program, main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.dl"
    path.write_text(
        "pairs(x) :- R(x, y), R(y, x)\n"
        "loops(x) :- R(x, x)\n"
    )
    return str(path)


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.json"
    payload = {
        "R": [
            {"row": ["a", "a"], "annotation": "s1"},
            {"row": ["a", "b"], "annotation": "s2"},
            {"row": ["b", "a"], "annotation": "s3"},
            {"row": ["b", "b"], "annotation": "s4"},
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestLoaders:
    def test_load_database_with_annotations(self, data_file):
        db = load_database(data_file)
        assert db.annotation_of("R", ("a", "b")) == "s2"

    def test_load_database_plain_rows(self, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"R": [["a", "b"], ["b", "a"]]}))
        db = load_database(str(path))
        assert db.fact_count() == 2
        assert db.is_abstractly_tagged()

    def test_load_database_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert main(["eval", "-p", "x", "-d", str(path)]) == 1

    def test_load_program(self, program_file):
        program = load_program(program_file)
        assert set(program) == {"pairs", "loops"}


class TestEval:
    def test_memory_engine(self, program_file, data_file):
        code, output = run(["eval", "-p", program_file, "-d", data_file])
        assert code == 0
        assert "pairs" in output and "loops" in output
        assert "s1^2 + s2*s3" in output

    @pytest.mark.parametrize("engine", ["sqlite", "algebra"])
    def test_other_engines_agree(self, program_file, data_file, engine):
        _, memory_out = run(["eval", "-p", program_file, "-d", data_file])
        code, other_out = run(
            ["eval", "-p", program_file, "-d", data_file, "--engine", engine]
        )
        assert code == 0
        assert other_out == memory_out

    def test_view_filter(self, program_file, data_file):
        code, output = run(
            ["eval", "-p", program_file, "-d", data_file, "--view", "loops"]
        )
        assert code == 0
        assert "loops" in output and "pairs" not in output

    def test_unknown_view_errors(self, program_file, data_file):
        code, _ = run(
            ["eval", "-p", program_file, "-d", data_file, "--view", "nope"]
        )
        assert code == 1

    def test_missing_file_errors(self, data_file):
        code, _ = run(["eval", "-p", "/does/not/exist", "-d", data_file])
        assert code == 1

    def test_sharded_engine_agrees(self, program_file, data_file):
        _, memory_out = run(["eval", "-p", program_file, "-d", data_file])
        code, sharded_out = run(
            [
                "eval", "-p", program_file, "-d", data_file,
                "--engine", "sharded", "--shards", "2", "--workers", "1",
            ]
        )
        assert code == 0
        assert sharded_out == memory_out

    def test_sharded_eval_handles_aggregate_views(self, data_file, tmp_path):
        path = tmp_path / "mixed.dl"
        path.write_text(
            "pairs(x) :- R(x, y), R(y, x)\n"
            "total(x, count(*)) :- R(x, y)\n"
        )
        _, default_out = run(["eval", "-p", str(path), "-d", data_file])
        code, sharded_out = run(
            [
                "eval", "-p", str(path), "-d", data_file,
                "--engine", "sharded", "--shards", "2", "--workers", "1",
            ]
        )
        assert code == 0
        assert sharded_out == default_out


class TestBatch:
    @pytest.fixture
    def queries_file(self, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(
            json.dumps(
                [
                    "ans(x) :- R(x, y), R(y, x)",
                    "ans(x) :- R(x, y), R(y, x)",
                    "loops(x) :- R(x, x)",
                    "agg(x, count(*)) :- R(x, y)",
                ]
            )
        )
        return str(path)

    @pytest.mark.parametrize("engine", ["hashjoin", "sharded", "sql"])
    def test_batch_evaluates_every_query(self, queries_file, data_file, engine):
        argv = ["batch", "-q", queries_file, "-d", data_file, "--engine", engine]
        if engine == "sharded":
            argv += ["--shards", "2", "--workers", "1"]
        code, output = run(argv)
        assert code == 0
        for index in range(4):
            assert "[{}]".format(index) in output
        assert "s1^2 + s2*s3" in output  # pairs provenance
        assert "count[" in output  # the aggregate query's tensor

    def test_batch_results_identical_across_engines(
        self, queries_file, data_file
    ):
        _, hashed = run(
            ["batch", "-q", queries_file, "-d", data_file, "--engine", "hashjoin"]
        )
        _, sharded = run(
            [
                "batch", "-q", queries_file, "-d", data_file,
                "--engine", "sharded", "--shards", "2", "--workers", "1",
            ]
        )
        assert sharded == hashed

    def test_batch_rejects_bad_queries_file(self, data_file, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        code, _ = run(["batch", "-q", str(path), "-d", data_file])
        assert code == 1
        path.write_text(json.dumps(["ans(x) :- R(x, y)", 42]))
        code, _ = run(["batch", "-q", str(path), "-d", data_file])
        assert code == 1


class TestMinimize:
    def test_minprov_output(self, program_file):
        code, output = run(["minimize", "-p", program_file, "--view", "pairs"])
        assert code == 0
        assert "v1 != v2" in output
        assert "R(v1, v1)" in output

    def test_trace_output(self, program_file):
        code, output = run(
            ["minimize", "-p", program_file, "--view", "pairs", "--trace"]
        )
        assert code == 0
        assert "QI" in output and "QIII" in output

    def test_standard_algorithm(self, program_file):
        code, output = run(
            ["minimize", "-p", program_file, "--algorithm", "standard"]
        )
        assert code == 0
        assert "R(x, y), R(y, x)" in output


class TestMaintain:
    @pytest.fixture
    def view_program_file(self, tmp_path):
        path = tmp_path / "views.dl"
        path.write_text("V(x, z) :- R(x, y), R(y, z)\n")
        return str(path)

    @pytest.fixture
    def updates_file(self, tmp_path):
        path = tmp_path / "updates.json"
        path.write_text(
            json.dumps(
                [
                    {"insert": {"R": [["b", "c"]]}},
                    {
                        "delete": {"R": [["a", "a"]]},
                        "retag": {
                            "R": [{"row": ["a", "b"], "annotation": "t1"}]
                        },
                    },
                ]
            )
        )
        return str(path)

    def test_maintain_applies_batches_and_checks(
        self, view_program_file, data_file, updates_file
    ):
        code, output = run(
            [
                "maintain",
                "-p", view_program_file,
                "-d", data_file,
                "-u", updates_file,
                "--check",
            ]
        )
        assert code == 0
        assert "batch 1" in output and "batch 2" in output
        assert "consistency: ok" in output
        assert "('b', 'a')" in output  # survives the R(a, a) deletion via R(b, b)
        assert "t1" in output  # the retagged annotation reaches the view

    def test_maintain_quiet_suppresses_dump(
        self, view_program_file, data_file, updates_file
    ):
        code, output = run(
            [
                "maintain",
                "-p", view_program_file,
                "-d", data_file,
                "-u", updates_file,
                "--quiet",
            ]
        )
        assert code == 0
        assert "-- V (" not in output

    def test_single_batch_object_accepted(
        self, view_program_file, data_file, tmp_path
    ):
        path = tmp_path / "one.json"
        path.write_text(json.dumps({"insert": {"R": [["c", "a"]]}}))
        code, output = run(
            ["maintain", "-p", view_program_file, "-d", data_file, "-u", str(path)]
        )
        assert code == 0
        assert "batch 1" in output

    def test_bad_updates_file_errors(self, view_program_file, data_file, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"upsert": {}}]))
        code, _ = run(
            ["maintain", "-p", view_program_file, "-d", data_file, "-u", str(path)]
        )
        assert code == 1

    def test_malformed_entry_errors_cleanly(
        self, view_program_file, data_file, tmp_path
    ):
        path = tmp_path / "malformed.json"
        path.write_text(
            json.dumps([{"insert": {"R": [{"annotation": "t1"}]}}])
        )
        code, _ = run(
            ["maintain", "-p", view_program_file, "-d", data_file, "-u", str(path)]
        )
        assert code == 1

    def test_string_row_entry_errors_cleanly(
        self, view_program_file, data_file, tmp_path
    ):
        path = tmp_path / "stringrow.json"
        path.write_text(json.dumps([{"insert": {"R": ["ab"]}}]))
        code, _ = run(
            ["maintain", "-p", view_program_file, "-d", data_file, "-u", str(path)]
        )
        assert code == 1

    def test_deleting_absent_tuple_errors(
        self, view_program_file, data_file, tmp_path
    ):
        path = tmp_path / "absent.json"
        path.write_text(json.dumps([{"delete": {"R": [["z", "z"]]}}]))
        code, _ = run(
            ["maintain", "-p", view_program_file, "-d", data_file, "-u", str(path)]
        )
        assert code == 1


class TestCoreAndSql:
    def test_core_command(self, program_file, data_file):
        code, output = run(["core", "-p", program_file, "-d", data_file])
        assert code == 0
        assert "core provenance" in output
        assert "s1 + s2*s3" in output

    def test_sql_command(self, program_file):
        code, output = run(["sql", "-p", program_file])
        assert code == 0
        assert 'FROM "R" t0, "R" t1' in output


class TestServe:
    @pytest.mark.parametrize("mode", ["threaded", "async"])
    def test_serve_command_boots_and_shuts_down(
        self, data_file, program_file, monkeypatch, mode
    ):
        """In-process serve: banner printed, Ctrl-C path closes cleanly."""
        from repro.server.aio import AsyncProvenanceServer
        from repro.server.app import ProvenanceServer

        def interrupted(_self):
            raise KeyboardInterrupt

        server_cls = {
            "threaded": ProvenanceServer,
            "async": AsyncProvenanceServer,
        }[mode]
        monkeypatch.setattr(server_cls, "serve_forever", interrupted)
        code, output = run(
            [
                "serve",
                "-d",
                data_file,
                "-p",
                program_file,
                "--port",
                "0",
                "--server-mode",
                mode,
            ]
        )
        assert code == 0
        assert "listening on http://" in output
        assert "mode={}".format(mode) in output
        assert "shutting down" in output

    def test_serve_help_lists_options(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        text = capsys.readouterr().out
        for option in (
            "--port",
            "--engine",
            "--shards",
            "--workers",
            "--cache-size",
            "--server-mode",
            "--request-timeout",
            "--idle-timeout",
            "--max-pending",
        ):
            assert option in text

    def test_serve_subprocess_round_trip(self, data_file, program_file):
        """`repro-prov serve` boots, answers over HTTP, dies cleanly."""
        import os
        import subprocess
        import sys
        from http.client import HTTPConnection

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "-d",
                data_file,
                "-p",
                program_file,
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=dict(os.environ),
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner, banner
            host, port = banner.split("http://", 1)[1].split()[0].split(":")
            conn = HTTPConnection(host, int(port), timeout=30)
            try:
                conn.request("POST", "/query", body=json.dumps({"query": "ans(x) :- R(x, x)"}))
                response = conn.getresponse()
                assert response.status == 200
                body = json.loads(response.read())
                assert body["kind"] == "polynomial"
                conn.request("GET", "/views/pairs")
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["view"] == "pairs"
            finally:
                conn.close()
        finally:
            process.terminate()
            process.wait(timeout=30)

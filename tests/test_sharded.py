"""Unit and property tests for the shard-parallel engine stack.

Covers the partitioning layer (:mod:`repro.db.sharding`), the sharded
executor and its process/thread backends
(:mod:`repro.engine.sharded`), the intern-table merge
(:meth:`InternTable.remapper`), the batched
:class:`~repro.session.QuerySession`, and the sharded path through the
incremental registry.  The cross-shard differential suite lives in
``test_engine_agreement.py``.
"""

import os
import random

import pytest

import repro.algebra.intern as intern_module
import repro.engine.sharded as sharded_module
from repro.algebra.intern import InternTable
from repro.db.generators import random_database
from repro.db.instance import AnnotatedDatabase
from repro.db.sharding import (
    DEFAULT_BROADCAST_THRESHOLD,
    ShardedDatabase,
    partition_rows,
    shard_of,
)
from repro.engine.evaluate import evaluate, evaluate_backtracking, provenance
from repro.engine.sharded import (
    ShardedExecutor,
    evaluate_aggregate_sharded,
    evaluate_sharded,
)
from repro.aggregate.evaluate import evaluate_aggregate
from repro.aggregate.result import merge_aggregate_results
from repro.errors import EvaluationError
from repro.incremental.delta import Delta
from repro.incremental.maintain import check_consistency
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program, parse_query
from repro.session import QuerySession

#: Worker-pool size for the suites; the CI ``parallel`` job pins it to 2.
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

#: A leaked process pool or shared-memory segment surfaces as a
#: ResourceWarning at gc/interpreter-shutdown time; fail loudly instead
#: of scrolling past.
pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestShardOf:
    def test_deterministic_and_in_range(self):
        rows = [("a", i) for i in range(50)] + [(None, "x"), (3.5, ())]
        for shard_count in (1, 2, 7):
            for row in rows:
                owner = shard_of(row, shard_count)
                assert 0 <= owner < shard_count
                assert owner == shard_of(row, shard_count)

    def test_partition_rows_is_a_partition(self):
        rows = [("r", i) for i in range(40)]
        fragments = partition_rows(rows, 4)
        assert sorted(row for frag in fragments for row in frag) == rows
        assert sum(len(frag) for frag in fragments) == len(rows)


class TestShardedDatabase:
    def _db(self, n=24):
        return random_database({"R": 2, "S": 2}, list(range(8)), n, seed=4)

    def test_fragments_partition_every_partitioned_relation(self):
        db = self._db()
        sharded = ShardedDatabase(db, 4, broadcast_threshold=0)
        for relation in db.relations():
            assert sharded.is_partitioned(relation)
            recovered = {}
            for shard in range(4):
                fragment = sharded.fragment(relation, shard)
                assert not set(recovered) & set(fragment)  # disjoint
                recovered.update(fragment)
            assert recovered == dict(db.facts(relation))

    def test_broadcast_threshold(self):
        db = AnnotatedDatabase.from_rows(
            {"Big": [("b", i) for i in range(20)], "Tiny": [("t",)]}
        )
        sharded = ShardedDatabase(db, 2, broadcast_threshold=8)
        assert sharded.partitioned_relations() == {"Big"}
        assert sharded.broadcast_relations() == {"Tiny"}
        assert sharded.owner_of("Tiny", ("t",)) is None
        assert sharded.owner_of("Big", ("b", 0)) in (0, 1)
        # Default threshold partitions nothing this small.
        assert DEFAULT_BROADCAST_THRESHOLD > 1
        assert not ShardedDatabase(db, 2).is_partitioned("Tiny")

    def test_relations_smaller_than_shard_count(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "c")]})
        db.declare_relation("Empty", 1)
        sharded = ShardedDatabase(db, 8, broadcast_threshold=0)
        fragments = [sharded.fragment("R", shard) for shard in range(8)]
        assert sum(len(fragment) for fragment in fragments) == 2
        assert sharded.payload().owned_facts("Empty", 3) == []

    def test_refresh_folds_change_log_incrementally(self):
        db = self._db()
        sharded = ShardedDatabase(db, 3, broadcast_threshold=0)
        epoch = sharded.epoch
        assert sharded.refresh() is False  # no changes: no epoch bump
        db.add("R", ("new", "row"))
        removed = next(iter(db.rows("S")))
        db.remove("S", removed)
        db.retag("R", ("new", "row"), "zz9")
        assert sharded.refresh() is True
        assert sharded.epoch == epoch + 1
        assert sharded.owner_of("R", ("new", "row")) == shard_of(
            ("new", "row"), 3
        )
        assert sharded.owner_of("S", removed) is None
        payload = sharded.payload()
        assert (("new", "row"), "zz9", shard_of(("new", "row"), 3)) in tuple(
            payload._relations["R"]
        )

    def test_refresh_promotes_and_demotes_across_threshold(self):
        db = AnnotatedDatabase.from_rows({"R": [("r", 0)]})
        sharded = ShardedDatabase(db, 2, broadcast_threshold=4)
        assert not sharded.is_partitioned("R")
        for i in range(1, 6):
            db.add("R", ("r", i))
        sharded.refresh()
        assert sharded.is_partitioned("R")  # promoted
        for i in range(6):
            if db.contains("R", ("r", i)) and db.cardinality("R") > 2:
                db.remove("R", ("r", i))
        sharded.refresh()
        assert not sharded.is_partitioned("R")  # demoted

    def test_refresh_without_change_log_rebuilds(self):
        db = AnnotatedDatabase(track_changes=False)
        for i in range(6):
            db.add("R", ("r", i))
        sharded = ShardedDatabase(db, 2, broadcast_threshold=0)
        db.add("R", ("r", 99))
        assert sharded.refresh() is True
        assert sharded.owner_of("R", ("r", 99)) is not None

    def test_payload_round_trips_through_pickle(self):
        import pickle

        sharded = ShardedDatabase(self._db(), 2, broadcast_threshold=0)
        payload = sharded.payload()
        clone = pickle.loads(pickle.dumps(payload))
        for relation in payload.relations():
            assert clone.facts(relation) == payload.facts(relation)
            for shard in range(2):
                assert clone.owned_facts(relation, shard) == (
                    payload.owned_facts(relation, shard)
                )

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(EvaluationError):
            ShardedDatabase(AnnotatedDatabase(), 0)

    def test_reprs_are_informative(self):
        sharded = ShardedDatabase(self._db(), 2, broadcast_threshold=0)
        assert "2 shards" in repr(sharded)
        assert "2 shards" in repr(sharded.payload())
        with QuerySession(self._db(), engine="hashjoin") as session:
            assert "engine=hashjoin" in repr(session)


# ----------------------------------------------------------------------
# Engine correctness on targeted shapes
# ----------------------------------------------------------------------
class TestShardedEngine:
    def _agree(self, query, db, **kwargs):
        kwargs.setdefault("shards", 4)
        kwargs.setdefault("workers", WORKERS)
        kwargs.setdefault("mode", "thread")
        kwargs.setdefault("broadcast_threshold", 0)
        assert evaluate_sharded(query, db) == evaluate_backtracking(query, db)
        assert evaluate_sharded(query, db, **kwargs) == (
            evaluate_backtracking(query, db)
        )

    def test_self_join_anchors_one_occurrence_only(self):
        # The anchored atom and the probe atom read the same relation;
        # restricting both would lose cross-fragment assignments.
        db = random_database({"R": 2}, ["a", "b", "c", "d"], 12, seed=8)
        self._agree(parse_query("ans(x, z) :- R(x, y), R(y, z)"), db)

    def test_broadcast_only_query_runs_on_one_shard(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "a")]})
        query = parse_query("ans(x) :- R(x, y), R(y, x)")
        with ShardedExecutor(
            db, shards=4, workers=WORKERS, mode="thread"
        ) as executor:
            assert executor.sharded_db.broadcast_relations() == {"R"}
            assert executor.evaluate(query) == evaluate_backtracking(query, db)

    def test_constants_diseqs_and_unions(self):
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 8, seed=2)
        query = parse_query(
            "ans(x) :- R(x, y), S(y), x != y\nans(x) :- R('a', x)"
        )
        self._agree(query, db)

    def test_unknown_relation_and_arity_mismatch_are_empty(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b")]})
        assert evaluate_sharded(
            parse_query("ans(x) :- Missing(x)"), db, shards=2, mode="thread"
        ) == {}
        assert evaluate_sharded(
            parse_query("ans(x) :- R(x)"), db, shards=2, mode="thread"
        ) == {}

    def test_rejects_aggregates_and_bad_mode(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", 1)]})
        with pytest.raises(EvaluationError):
            evaluate_sharded(parse_query("ans(sum(v)) :- R(x, v)"), db)
        with pytest.raises(EvaluationError):
            ShardedExecutor(db, mode="quantum")

    def test_closed_executor_refuses_work(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b")]})
        executor = ShardedExecutor(db, shards=2, mode="thread")
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(EvaluationError):
            executor.evaluate(parse_query("ans(x) :- R(x, y)"))

    def test_aggregate_states_merge_through_semimodule(self):
        db = random_database({"R": 2, "S": 2}, [0, 1, 2, 3], 14, seed=6)
        query = parse_query(
            "agg(x, sum(v), min(v), count(*)) :- R(x, y), S(y, v)"
        )
        reference = evaluate_aggregate(query, db, engine="backtrack")
        assert (
            evaluate_aggregate_sharded(
                query,
                db,
                shards=4,
                workers=WORKERS,
                mode="thread",
                broadcast_threshold=0,
            )
            == reference
        )
        # And through the evaluate_aggregate dispatch (process default).
        assert (
            evaluate_aggregate(query, db, engine="sharded", shards=2)
            == reference
        )

    def test_merge_aggregate_results_is_order_insensitive(self):
        db = random_database({"R": 2}, [0, 1, 2], 6, seed=9)
        query = parse_query("agg(x, max(y)) :- R(x, y)")
        partial_a = evaluate_aggregate(query, db)
        empty = {}
        merged = merge_aggregate_results([empty, partial_a, empty])
        assert merged == partial_a

    def test_evaluate_dispatch_and_unknown_engine(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("b", "c")]})
        query = parse_query("ans(x, z) :- R(x, y), R(y, z)")
        assert evaluate(query, db, engine="sharded", shards=2, workers=1) == (
            evaluate_backtracking(query, db)
        )
        assert provenance(
            query, db, ("a", "c"), engine="sharded", shards=2, workers=1
        ) == evaluate_backtracking(query, db)[("a", "c")]
        with pytest.raises(EvaluationError):
            evaluate(query, db, engine="turbo")

    def test_one_shot_calls_can_share_an_executor(self):
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 10, seed=4)
        query = parse_query("ans(x) :- R(x, y)")
        aggregate = parse_query("agg(x, sum(v)) :- S(x, v)")
        with ShardedExecutor(
            db, shards=2, workers=WORKERS, mode="thread", broadcast_threshold=0
        ) as executor:
            assert evaluate_sharded(query, db, executor=executor) == (
                evaluate_backtracking(query, db)
            )
            assert evaluate_aggregate_sharded(
                aggregate, db, executor=executor
            ) == evaluate_aggregate(aggregate, db, engine="backtrack")
            # The caller-supplied executor survives the one-shot calls.
            assert executor.evaluate(query)


class TestProcessPool:
    """The pickled-payload path: small workloads, real worker processes."""

    def test_plain_and_aggregate_agree(self):
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 10, seed=13)
        query = parse_query("ans(x, v) :- R(x, y), S(y, v)")
        aggregate = parse_query("agg(x, sum(v)) :- R(x, y), S(y, v)")
        with ShardedExecutor(
            db, shards=2, workers=2, mode="process", broadcast_threshold=0
        ) as executor:
            assert executor.evaluate(query) == evaluate_backtracking(query, db)
            assert executor.evaluate_aggregate(aggregate) == (
                evaluate_aggregate(aggregate, db, engine="backtrack")
            )
            assert executor.mode == "process"

    def test_falls_back_to_threads_when_processes_unavailable(self, monkeypatch):
        def broken_pool(*_args, **_kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(
            sharded_module.concurrent.futures,
            "ProcessPoolExecutor",
            broken_pool,
        )
        db = random_database({"R": 2}, ["a", "b"], 4, seed=1)
        query = parse_query("ans(x) :- R(x, y)")
        with ShardedExecutor(
            db, shards=2, workers=2, mode="process", broadcast_threshold=0
        ) as executor:
            assert executor.evaluate(query) == evaluate_backtracking(query, db)
            assert executor.mode == "thread"

    def test_falls_back_when_the_pool_breaks_mid_run(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        db = random_database({"R": 2}, ["a", "b"], 4, seed=2)
        query = parse_query("ans(x, y) :- R(x, y)")
        with ShardedExecutor(
            db, shards=2, workers=2, mode="process", broadcast_threshold=0
        ) as executor:
            reference = executor.evaluate(query)
            assert executor.mode == "process"

            def broken_submit(*_args, **_kwargs):
                raise BrokenProcessPool("worker died")

            monkeypatch.setattr(executor._pool, "submit", broken_submit)
            assert executor.evaluate(query) == reference
            assert executor.mode == "thread"


# ----------------------------------------------------------------------
# Shared-memory payload lifecycle
# ----------------------------------------------------------------------
class TestSharedMemoryLifecycle:
    """Columnar process pools ship the payload via one shared-memory
    segment; every exit path — close(), gc of a leaked executor, a
    worker crash — must unlink it (no strays in /dev/shm)."""

    QUERY = parse_query("ans(x, z) :- R(x, y), S(y, z)")

    def _db(self):
        return random_database({"R": 2, "S": 2}, ["a", "b", "c"], 9, seed=7)

    def _segment(self, executor):
        """The executor's live segment, skipping hosts without one."""
        executor.evaluate(self.QUERY)
        if executor.mode != "process" or executor._shm is None:
            executor.close()
            pytest.skip("no shared-memory transport on this host")
        return executor._shm

    @staticmethod
    def _assert_unlinked(name):
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_unlinks_segment(self):
        executor = ShardedExecutor(
            self._db(), shards=2, workers=WORKERS, mode="process"
        )
        name = self._segment(executor).name
        executor.close()
        assert executor._shm is None
        self._assert_unlinked(name)

    def test_finalizer_unlinks_segment_of_leaked_executor(self):
        import gc

        executor = ShardedExecutor(
            self._db(), shards=2, workers=WORKERS, mode="process"
        )
        name = self._segment(executor).name
        finalizer = executor._finalizer
        del executor
        gc.collect()
        assert not finalizer.alive
        self._assert_unlinked(name)

    def test_worker_crash_falls_back_and_unlinks(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        executor = ShardedExecutor(
            self._db(), shards=2, workers=WORKERS, mode="process"
        )
        with executor:
            reference = executor.evaluate(self.QUERY)
            name = self._segment(executor).name

            def broken_submit(*_args, **_kwargs):
                raise BrokenProcessPool("worker died")

            monkeypatch.setattr(executor._pool, "submit", broken_submit)
            assert executor.evaluate(self.QUERY) == reference
            assert executor.mode == "thread"
            assert executor._shm is None
            self._assert_unlinked(name)

    def test_segment_failure_falls_back_to_pickled_initargs(self, monkeypatch):
        monkeypatch.setattr(
            ShardedExecutor,
            "_create_segment",
            staticmethod(lambda _payload, _span: None),
        )
        db = self._db()
        with ShardedExecutor(
            db, shards=2, workers=WORKERS, mode="process"
        ) as executor:
            result = executor.evaluate(self.QUERY)
            assert executor._shm is None
            assert result == evaluate_backtracking(self.QUERY, db)

    def test_epoch_change_recreates_segment(self):
        db = self._db()
        executor = ShardedExecutor(
            db, shards=2, workers=WORKERS, mode="process"
        )
        with executor:
            first = self._segment(executor).name
            db.add("R", ("c", "a"), "s_new")
            executor.refresh()
            executor.evaluate(self.QUERY)
            if executor.mode != "process" or executor._shm is None:
                pytest.skip("no shared-memory transport on this host")
            second = executor._shm.name
            assert second != first
            self._assert_unlinked(first)
        self._assert_unlinked(second)


# ----------------------------------------------------------------------
# Intern-table merging (shard-local ids into a shared table)
# ----------------------------------------------------------------------
class TestInternMerge:
    def _random_local_table(self, rng, symbols):
        """A local table plus the monomial ids it handed out."""
        table = InternTable()
        ids = []
        for _ in range(rng.randrange(3, 12)):
            monomial = table.one
            for _ in range(rng.randrange(0, 4)):
                monomial = table.times_symbol(
                    monomial, table.symbol_id(rng.choice(symbols))
                )
            ids.append(monomial)
        return table, ids

    @pytest.mark.parametrize("seed", range(12))
    def test_remap_preserves_monomial_identity(self, seed):
        rng = random.Random(seed)
        symbols = ["s{}".format(i) for i in range(6)]
        target = InternTable()
        target.symbol_id("pre-existing")  # ids must not be assumed aligned
        local, ids = self._random_local_table(rng, symbols)
        remap = target.remapper(*local.export_state())
        for monomial_id in ids:
            assert str(target.monomial(remap(monomial_id))) == str(
                local.monomial(monomial_id)
            )

    @pytest.mark.parametrize("seed", range(12))
    def test_merge_order_does_not_change_polynomials(self, seed):
        """Random interleavings of shard tables merge identically."""
        rng = random.Random(1000 + seed)
        symbols = ["s{}".format(i) for i in range(5)]
        shards = []
        for _ in range(4):
            local, ids = self._random_local_table(rng, symbols)
            annotation = {
                monomial_id: rng.randrange(1, 4)
                for monomial_id in set(ids)
            }
            shards.append((local, annotation))

        def merged_polynomial(order):
            target = InternTable()
            combined = {}
            for index in order:
                local, annotation = shards[index]
                remap = target.remapper(*local.export_state())
                for monomial_id, coefficient in annotation.items():
                    key = remap(monomial_id)
                    combined[key] = combined.get(key, 0) + coefficient
            return target.polynomial(combined)

        orders = [list(range(4)) for _ in range(3)]
        for order in orders[1:]:
            rng.shuffle(order)
        baseline = merged_polynomial(orders[0])
        for order in orders[1:]:
            assert merged_polynomial(order) == baseline

    def test_merge_after_swap_stays_on_the_pinned_table(self, monkeypatch):
        """Regression: a shared-table swap mid-merge must not strand ids.

        The remapper closure pins the table it was created on; forcing
        :func:`shared_intern` to swap between remap calls must neither
        corrupt the merge nor make decodes disagree.
        """
        pinned = intern_module.shared_intern()
        local = InternTable()
        first = local.times_symbol(local.one, local.symbol_id("alpha"))
        second = local.times_symbol(first, local.symbol_id("beta"))
        remap = pinned.remapper(*local.export_state())
        mapped_first = remap(first)

        monkeypatch.setattr(intern_module, "MAX_SHARED_ENTRIES", 0)
        swapped = intern_module.shared_intern()  # the swap happens here
        assert swapped is not pinned

        mapped_second = remap(second)  # continues on the pinned table
        assert str(pinned.monomial(mapped_first)) == "alpha"
        assert str(pinned.monomial(mapped_second)) == "alpha*beta"
        # The MAX_SHARED_ENTRIES bound still governs the shared table:
        # every oversized call starts another fresh table.
        assert intern_module.shared_intern() is not swapped or (
            swapped.entry_count() <= 0
        )

    def test_bounded_growth_swap_respected_under_merging(self, monkeypatch):
        """Merging never resurrects an oversized shared table."""
        monkeypatch.setattr(intern_module, "MAX_SHARED_ENTRIES", 4)
        table = intern_module.shared_intern()
        local = InternTable()
        ids = []
        monomial = local.one
        for index in range(8):
            monomial = local.times_symbol(
                monomial, local.symbol_id("g{}".format(index))
            )
            ids.append(monomial)
        remap = table.remapper(*local.export_state())
        for monomial_id in ids:
            remap(monomial_id)
        assert table.entry_count() > 4
        assert intern_module.shared_intern() is not table


# ----------------------------------------------------------------------
# QuerySession
# ----------------------------------------------------------------------
class TestQuerySession:
    def _db(self):
        return random_database(
            {"R": 2, "S": 1}, ["a", "b", "c", "d"], 14, seed=21
        )

    def test_batch_groups_by_cached_plan(self):
        db = self._db()
        chain = parse_query("ans(x, z) :- R(x, y), R(y, z)")
        union = parse_query(
            "ans(x, z) :- R(x, y), R(y, z)\nans(x, x) :- R(x, x)"
        )
        with QuerySession(
            db, shards=2, workers=WORKERS, mode="thread", broadcast_threshold=0
        ) as session:
            first = session.evaluate_batch([chain, union, chain])
            stats = session.stats()
            # The chain adjunct is shared by all three queries but
            # evaluated (and planned) once.
            assert stats["memoized_adjuncts"] == 2
            assert stats["plan_cache"]["misses"] == 2
            again = session.evaluate(chain)
            assert session.stats()["memo_hits"] >= 1
        assert first[0] == again == evaluate_backtracking(chain, db)
        assert first[1] == evaluate_backtracking(union, db)
        assert first[2] == first[0]

    def test_mixed_plain_and_aggregate_batch_preserves_order(self):
        db = random_database({"R": 2, "S": 2}, [0, 1, 2], 9, seed=3)
        plain = parse_query("ans(x) :- R(x, y)")
        aggregate = parse_query("agg(x, sum(v)) :- S(x, v)")
        with QuerySession(
            db, shards=2, workers=WORKERS, mode="thread", broadcast_threshold=0
        ) as session:
            results = session.evaluate_batch([aggregate, plain, aggregate])
        assert results[0] == evaluate_aggregate(db=db, query=aggregate)
        assert results[1] == evaluate_backtracking(plain, db)
        assert results[2] == results[0]

    def test_auto_refresh_on_database_change_keeps_partitioning_warm(self):
        db = self._db()
        query = parse_query("ans(x) :- R(x, y)")
        with QuerySession(
            db, shards=2, workers=WORKERS, mode="thread", broadcast_threshold=0
        ) as session:
            before = session.evaluate(query)
            sharded_db = session.executor.sharded_db
            pool = session.executor._pool
            db.add("R", ("zz", "zz"))
            after = session.evaluate(query)
            assert session.executor.sharded_db is sharded_db  # warm, not rebuilt
            # Thread pools hold no payload snapshot: no churn on change.
            assert session.executor._pool is pool
            assert session.stats()["refreshes"] == 1
        assert before != after
        assert after == evaluate_backtracking(query, db)

    def test_session_pins_intern_table_across_forced_swap(self, monkeypatch):
        """Regression: a shared_intern() swap mid-session must not strand
        the memoized interned annotations a batch decodes later."""
        db = self._db()
        query = parse_query("ans(x, z) :- R(x, y), R(y, z)")
        other = parse_query("ans(y) :- R(x, y), S(y)")
        session = QuerySession(
            db, shards=2, workers=WORKERS, mode="thread", broadcast_threshold=0
        )
        try:
            pinned = session.intern_table
            first = session.evaluate(query)
            # Force every shared_intern() call from here on to swap.
            monkeypatch.setattr(intern_module, "MAX_SHARED_ENTRIES", 0)
            assert intern_module.shared_intern() is not pinned
            # The memoized annotations of `query` decode against the
            # pinned table next to freshly evaluated ones.
            second, third = session.evaluate_batch([query, other])
            assert session.intern_table is pinned
            assert second == first == evaluate_backtracking(query, db)
            assert third == evaluate_backtracking(other, db)
        finally:
            session.close()

    def test_hashjoin_session_matches_sharded_session(self):
        db = self._db()
        queries = [
            parse_query("ans(x, z) :- R(x, y), R(y, z), x != z"),
            parse_query("agg(x, count(*)) :- R(x, y)"),
        ]
        with QuerySession(db, engine="hashjoin") as plain_session:
            plain = plain_session.evaluate_batch(queries)
            assert plain_session.executor is None
        with QuerySession(
            db, shards=3, workers=WORKERS, mode="thread", broadcast_threshold=0
        ) as sharded_session:
            sharded = sharded_session.evaluate_batch(queries)
        assert plain == sharded

    def test_evaluate_type_guards_and_close(self):
        db = self._db()
        plain = parse_query("ans(x) :- R(x, y)")
        aggregate = parse_query("agg(count(*)) :- R(x, y)")
        session = QuerySession(db, engine="hashjoin")
        with pytest.raises(EvaluationError):
            session.evaluate(aggregate)
        with pytest.raises(EvaluationError):
            session.evaluate_aggregate(plain)
        session.close()
        with pytest.raises(EvaluationError):
            session.evaluate(plain)
        with pytest.raises(EvaluationError):
            QuerySession(db, engine="quantum")


# ----------------------------------------------------------------------
# Incremental registry on the sharded engine
# ----------------------------------------------------------------------
class TestShardedRegistry:
    PROGRAM = (
        "V(x, z) :- R(x, y), S(y, z)\n"
        "W(x) :- V(x, y), V(y, x)\n"
        "agg(x, count(*)) :- R(x, y)"
    )

    def test_materialization_matches_default_engine(self):
        db = random_database({"R": 2, "S": 2}, list(range(5)), 20, seed=17)
        program = parse_program(self.PROGRAM)
        sharded = ViewRegistry(
            program, db, engine="sharded", shards=2, workers=WORKERS
        )
        default = ViewRegistry(program, db)
        for name in default.order:
            assert sharded.base_provenance(name) == default.base_provenance(name)

    def test_refresh_loop_keeps_partitioning_warm_and_consistent(self):
        db = random_database({"R": 2, "S": 2}, list(range(5)), 20, seed=18)
        registry = ViewRegistry(
            parse_program(self.PROGRAM),
            db,
            engine="sharded",
            shards=2,
            workers=WORKERS,
        )
        assert registry.session is not None
        sharded_db = registry.session.executor.sharded_db
        epoch_before = sharded_db.epoch
        for index in range(3):
            registry.apply(Delta(inserts=[("R", ("p{}".format(index), 0))]))
            assert check_consistency(registry).consistent
        # Same partitioning object, refreshed through the change log.
        assert registry.session.executor.sharded_db is sharded_db
        assert sharded_db.epoch > epoch_before

    def test_change_log_is_pruned_per_batch(self):
        db = random_database({"R": 2, "S": 2}, list(range(4)), 12, seed=19)
        with ViewRegistry(
            parse_program("V(x, z) :- R(x, y), S(y, z)"),
            db,
            engine="sharded",
            shards=2,
            workers=WORKERS,
        ) as registry:
            for index in range(5):
                registry.apply(Delta(inserts=[("R", ("q{}".format(index), 0))]))
                # Every record the partitioning consumed is dropped — a
                # long refresh loop's memory stays bounded.
                assert registry.session.executor.sharded_db._db.changes_since(0) == []
            assert check_consistency(registry).consistent

    def test_session_serves_queries_over_maintained_views(self):
        db = random_database({"R": 2, "S": 2}, list(range(4)), 14, seed=23)
        with ViewRegistry(
            parse_program("V(x, z) :- R(x, y), S(y, z)"),
            db,
            engine="sharded",
            shards=2,
            workers=WORKERS,
        ) as registry:
            registry.apply(Delta(inserts=[("R", ("fresh", 0))]))
            served = registry.session.evaluate(
                parse_query("ans(x, z) :- V(x, z)")
            )
            assert set(served) == set(registry.view("V"))
            for row, polynomial in served.items():
                assert str(polynomial) == registry.symbol_of("V", row)

    def test_maintain_refresh_preserves_engine_configuration(self):
        from repro.incremental.maintain import refresh

        db = random_database({"R": 2}, list(range(3)), 6, seed=2)
        with ViewRegistry(
            parse_program("V(x) :- R(x, y)"),
            db,
            engine="sharded",
            shards=2,
            workers=WORKERS,
        ) as registry:
            rebuilt = refresh(registry)
            try:
                assert rebuilt.engine == "sharded"
                assert rebuilt.engine_options == {
                    "shards": 2, "workers": WORKERS,
                }
                assert rebuilt.session is not None
                assert rebuilt.base_provenance("V") == (
                    registry.base_provenance("V")
                )
            finally:
                rebuilt.close()

    def test_close_is_idempotent(self):
        db = random_database({"R": 2}, ["a", "b"], 3, seed=1)
        registry = ViewRegistry(
            parse_program("V(x) :- R(x, y)"), db, engine="sharded", shards=2
        )
        registry.close()
        registry.close()
        assert ViewRegistry(parse_program("V(x) :- R(x, y)"), db).session is None

    def test_rejects_unknown_engine(self):
        db = random_database({"R": 2}, ["a"], 1, seed=0)
        with pytest.raises(EvaluationError):
            ViewRegistry(
                parse_program("V(x) :- R(x, y)"), db, engine="quantum"
            )

"""Unit tests for monomials and N[X] polynomials."""

import pytest

from repro.semiring.polynomial import (
    Monomial,
    Polynomial,
    ProvenancePolynomialSemiring,
)


class TestMonomial:
    def test_unit_monomial(self):
        one = Monomial.one()
        assert one.degree == 0
        assert str(one) == "1"

    def test_degree_counts_multiplicity(self):
        assert Monomial(["s1", "s1", "s2"]).degree == 3

    def test_exponent(self):
        m = Monomial(["s1", "s1", "s2"])
        assert m.exponent("s1") == 2
        assert m.exponent("s3") == 0

    def test_str_compact_form(self):
        assert str(Monomial(["s1", "s1", "s2"])) == "s1^2*s2"

    def test_expanded_str(self):
        assert Monomial(["s1", "s1"]).expanded_str() == "s1*s1"

    def test_multiplication(self):
        m = Monomial(["s1"]) * Monomial(["s1", "s2"])
        assert m == Monomial(["s1", "s1", "s2"])

    def test_multiplication_by_symbol(self):
        assert Monomial(["s1"]) * "s2" == Monomial(["s1", "s2"])

    def test_support(self):
        assert Monomial(["s1", "s1", "s2"]).support() == Monomial(["s1", "s2"])

    def test_is_linear(self):
        assert Monomial(["s1", "s2"]).is_linear()
        assert not Monomial(["s1", "s1"]).is_linear()

    def test_order_is_multiset_inclusion(self):
        assert Monomial(["s1"]) <= Monomial(["s1", "s2"])
        assert not Monomial(["s1", "s1"]) <= Monomial(["s1", "s2"])

    def test_rejects_non_string_factors(self):
        with pytest.raises(TypeError):
            Monomial([1, 2])

    def test_hashable_and_equal(self):
        assert hash(Monomial(["a", "b"])) == hash(Monomial(["b", "a"]))


class TestPolynomialConstruction:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert str(Polynomial.zero()) == "0"

    def test_one(self):
        assert str(Polynomial.one()) == "1"

    def test_variable(self):
        assert str(Polynomial.variable("s1")) == "s1"

    def test_from_monomials_accumulates(self):
        p = Polynomial.from_monomials([Monomial(["s1"]), Monomial(["s1"])])
        assert p.coefficient(Monomial(["s1"])) == 2

    def test_zero_coefficients_dropped(self):
        p = Polynomial({Monomial(["s1"]): 0})
        assert p.is_zero()

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Polynomial({Monomial(["s1"]): -1})

    def test_non_monomial_key_rejected(self):
        with pytest.raises(TypeError):
            Polynomial({"s1": 1})


class TestPolynomialParse:
    def test_parse_simple(self):
        assert str(Polynomial.parse("s1 + s2*s3")) == "s1 + s2*s3"

    def test_parse_exponents(self):
        p = Polynomial.parse("s1^2*s2")
        assert p.coefficient(Monomial(["s1", "s1", "s2"])) == 1

    def test_parse_coefficients(self):
        p = Polynomial.parse("3*s1")
        assert p.coefficient(Monomial(["s1"])) == 3

    def test_parse_repeated_factors_fold(self):
        assert Polynomial.parse("s1*s1") == Polynomial.parse("s1^2")

    def test_parse_zero(self):
        assert Polynomial.parse("0").is_zero()
        assert Polynomial.parse("").is_zero()

    def test_parse_roundtrip(self):
        text = "2*s1^2*s2 + s3 + 4*s4*s5"
        assert str(Polynomial.parse(text)) == text


class TestPolynomialAlgebra:
    def test_addition(self):
        p = Polynomial.parse("s1") + Polynomial.parse("s1 + s2")
        assert p == Polynomial.parse("2*s1 + s2")

    def test_multiplication_distributes(self):
        p = Polynomial.parse("s1 + s2") * Polynomial.parse("s3")
        assert p == Polynomial.parse("s1*s3 + s2*s3")

    def test_multiplication_merges_coefficients(self):
        p = Polynomial.parse("s1 + s2") * Polynomial.parse("s1 + s2")
        assert p == Polynomial.parse("s1^2 + 2*s1*s2 + s2^2")

    def test_scale(self):
        assert Polynomial.parse("s1").scale(3) == Polynomial.parse("3*s1")

    def test_scale_by_zero(self):
        assert Polynomial.parse("s1 + s2").scale(0).is_zero()

    def test_map_symbols(self):
        p = Polynomial.parse("s1*s2 + s1")
        renamed = p.map_symbols({"s1": "t"})
        assert renamed == Polynomial.parse("t*s2 + t")

    def test_map_symbols_can_merge(self):
        p = Polynomial.parse("s1 + s2")
        assert p.map_symbols({"s2": "s1"}) == Polynomial.parse("2*s1")


class TestPolynomialStructure:
    def test_monomial_count_counts_occurrences(self):
        assert Polynomial.parse("2*s1 + s2").monomial_count() == 3

    def test_expanded_lists_occurrences(self):
        expanded = Polynomial.parse("2*s1").expanded()
        assert expanded == [Monomial(["s1"]), Monomial(["s1"])]

    def test_expanded_str(self):
        assert Polynomial.parse("2*s1^2").expanded_str() == "s1*s1 + s1*s1"

    def test_support(self):
        assert Polynomial.parse("s1*s2 + s3").support() == frozenset(
            {"s1", "s2", "s3"}
        )

    def test_degree(self):
        assert Polynomial.parse("s1 + s2^3").degree() == 3
        assert Polynomial.zero().degree() == 0

    def test_hashable(self):
        assert hash(Polynomial.parse("s1 + s2")) == hash(Polynomial.parse("s2 + s1"))


class TestProvenanceSemiring:
    def test_semiring_laws_spotcheck(self):
        semiring = ProvenancePolynomialSemiring()
        a = Polynomial.parse("s1 + s2")
        b = Polynomial.parse("s3")
        c = Polynomial.parse("s1*s2")
        assert semiring.add(a, b) == semiring.add(b, a)
        assert semiring.mul(a, b) == semiring.mul(b, a)
        assert semiring.mul(a, semiring.add(b, c)) == semiring.add(
            semiring.mul(a, b), semiring.mul(a, c)
        )
        assert semiring.mul(a, semiring.zero).is_zero()
        assert semiring.mul(a, semiring.one) == a

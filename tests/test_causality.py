"""Tests for causality/responsibility and polynomial derivatives."""

import pytest

from repro.apps.causality import (
    actual_causes,
    counterfactual_causes,
    responsibility,
    responsibility_ranking,
    sensitivity,
    witnesses_of,
)
from repro.direct.core_polynomial import core_polynomial_approx
from repro.engine.evaluate import evaluate
from repro.paperdata import figure1, table2_database
from repro.semiring.polynomial import Polynomial


class TestDerivative:
    def test_power_rule(self):
        p = Polynomial.parse("s1^3")
        assert p.derivative("s1") == Polynomial.parse("3*s1^2")

    def test_sum_rule(self):
        p = Polynomial.parse("s1*s2 + s1 + s3")
        assert p.derivative("s1") == Polynomial.parse("s2 + 1")

    def test_absent_symbol_gives_zero(self):
        assert Polynomial.parse("s1").derivative("s9").is_zero()

    def test_coefficients_scale(self):
        assert Polynomial.parse("4*s1^2").derivative("s1") == Polynomial.parse(
            "8*s1"
        )

    def test_mixed_partials_commute(self):
        p = Polynomial.parse("s1^2*s2^3 + s1*s3")
        assert p.derivative("s1").derivative("s2") == p.derivative("s2").derivative(
            "s1"
        )


class TestWitnesses:
    def test_minimal_witnesses_only(self):
        p = Polynomial.parse("s1 + s1*s2 + s2*s3")
        assert witnesses_of(p) == [frozenset({"s1"}), frozenset({"s2", "s3"})]

    def test_exponents_ignored(self):
        p = Polynomial.parse("s1^5")
        assert witnesses_of(p) == [frozenset({"s1"})]

    def test_zero_polynomial(self):
        assert witnesses_of(Polynomial.zero()) == []


class TestCauses:
    def test_counterfactual_in_every_witness(self):
        p = Polynomial.parse("s1*s2 + s1*s3")
        assert counterfactual_causes(p) == {"s1"}

    def test_no_counterfactual_with_disjoint_witnesses(self):
        assert counterfactual_causes(Polynomial.parse("s1 + s2")) == set()

    def test_actual_causes_exclude_redundant_tuples(self):
        # s3 appears only in a non-minimal witness: not an actual cause.
        p = Polynomial.parse("s1*s2 + s1*s2*s3")
        assert actual_causes(p) == {"s1", "s2"}

    def test_responsibility_values(self):
        assert responsibility(Polynomial.parse("s1*s2"), "s1") == 1.0
        assert responsibility(Polynomial.parse("s1 + s2"), "s1") == 0.5
        assert responsibility(Polynomial.parse("s1 + s2 + s3"), "s1") == pytest.approx(
            1.0 / 3.0
        )

    def test_responsibility_of_non_cause_is_zero(self):
        p = Polynomial.parse("s1*s2 + s1*s2*s3")
        assert responsibility(p, "s3") == 0.0
        assert responsibility(p, "s9") == 0.0

    def test_ranking_sorted(self):
        p = Polynomial.parse("s1*s2 + s1*s3")
        ranking = responsibility_ranking(p)
        assert ranking[0] == ("s1", 1.0)
        assert {symbol for symbol, _ in ranking} == {"s1", "s2", "s3"}
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_on_paper_view(self):
        """Causes of ans(a) for Qconj on Table 2: witnesses {s1} and
        {s2, s3}; no counterfactual; s1 more responsible."""
        fig = figure1()
        db = table2_database()
        p = evaluate(fig.q_conj, db)[("a",)]
        assert counterfactual_causes(p) == set()
        assert actual_causes(p) == {"s1", "s2", "s3"}
        assert responsibility(p, "s1") == 0.5
        assert responsibility(p, "s2") == 0.5

    def test_invariant_under_core(self):
        """Causality depends only on minimal witnesses, so the core
        provenance yields identical answers."""
        p = Polynomial.parse("s1^2 + s1*s2 + s3*s4 + s3*s4*s5")
        core = core_polynomial_approx(p)
        assert counterfactual_causes(p) == counterfactual_causes(core)
        assert actual_causes(p) == actual_causes(core)
        for symbol in actual_causes(p):
            assert responsibility(p, symbol) == responsibility(core, symbol)


class TestSensitivity:
    def test_linear_case(self):
        p = Polynomial.parse("s1*s2 + s3")
        assert sensitivity(p, "s1", {"s1": 1, "s2": 4, "s3": 7}) == 4

    def test_quadratic_case(self):
        p = Polynomial.parse("s1^2")
        assert sensitivity(p, "s1", {"s1": 3}) == 6

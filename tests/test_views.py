"""Tests for view programs and provenance composition."""

import pytest

from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate
from repro.errors import EvaluationError
from repro.query.parser import parse_program, parse_query
from repro.semiring.polynomial import Polynomial
from repro.views.program import (
    dependency_order,
    evaluate_program,
    expand_to_base,
)


@pytest.fixture
def edges():
    return AnnotatedDatabase.from_dict(
        {
            "E": {
                ("a", "b"): "s1",
                ("b", "c"): "s2",
                ("c", "a"): "s3",
            }
        }
    )


class TestDependencyOrder:
    def test_linear_chain(self):
        program = parse_program(
            """
            hop2(x, z) :- E(x, y), E(y, z)
            hop3(x, w) :- hop2(x, z), E(z, w)
            """
        )
        assert dependency_order(program) == ["hop2", "hop3"]

    def test_independent_views_sorted(self):
        program = parse_program("a(x) :- E(x, y)\nb(x) :- E(y, x)")
        assert dependency_order(program) == ["a", "b"]

    def test_cycle_rejected(self):
        program = parse_program("a(x) :- b(x)\nb(x) :- a(x)")
        with pytest.raises(EvaluationError):
            dependency_order(program)

    def test_self_recursion_rejected(self):
        program = parse_program("a(x) :- a(x), E(x, y)")
        with pytest.raises(EvaluationError):
            dependency_order(program)


class TestEvaluation:
    def test_two_layer_program(self, edges):
        program = parse_program(
            """
            hop2(x, z) :- E(x, y), E(y, z)
            hop3(x, w) :- hop2(x, z), E(z, w)
            """
        )
        evaluation = evaluate_program(program, edges)
        hop2 = evaluation.views["hop2"]
        assert set(hop2.results) == {("a", "c"), ("b", "a"), ("c", "b")}
        assert hop2.results[("a", "c")] == Polynomial.parse("s1*s2")
        hop3 = evaluation.views["hop3"]
        assert set(hop3.results) == {("a", "a"), ("b", "b"), ("c", "c")}

    def test_base_expansion_matches_unfolded_query(self, edges):
        """Composing provenance through a view layer equals evaluating
        the unfolded query directly — the universality of N[X]."""
        program = parse_program(
            """
            hop2(x, z) :- E(x, y), E(y, z)
            hop4(x, w) :- hop2(x, z), hop2(z, w)
            """
        )
        evaluation = evaluate_program(program, edges)
        composed = evaluation.base_provenance("hop4")
        unfolded = parse_query(
            "ans(x, w) :- E(x, y1), E(y1, z), E(z, y2), E(y2, w)"
        )
        direct = evaluate(unfolded, edges)
        assert composed == direct

    def test_view_symbols_are_fresh(self, edges):
        program = parse_program("hop2(x, z) :- E(x, y), E(y, z)")
        evaluation = evaluate_program(program, edges)
        symbols = set(evaluation.views["hop2"].symbols.values())
        assert symbols.isdisjoint(edges.annotations())
        assert len(symbols) == 3

    def test_name_clash_rejected(self, edges):
        program = parse_program("E(x, y) :- E(y, x)")
        with pytest.raises(EvaluationError):
            evaluate_program(program, edges)

    def test_section6_non_abstract_tags_arise(self, edges):
        """Two view tuples can carry equal base polynomials — the
        composed layer is effectively non-abstractly tagged, the
        Sec. 6 setting."""
        db = AnnotatedDatabase.from_dict({"E": {("a", "a"): "s"}})
        program = parse_program(
            "pair(x, y) :- E(x, z), E(z, y)\nloop(x) :- pair(x, x)"
        )
        evaluation = evaluate_program(program, db)
        expanded = evaluation.base_provenance("loop")
        assert expanded[("a",)] == Polynomial.parse("s^2")


class TestExpansion:
    def test_base_symbols_stand_for_themselves(self):
        p = Polynomial.parse("s1*s2")
        assert expand_to_base(p, {}) == p

    def test_single_substitution(self):
        p = Polynomial.parse("w1 + s3")
        bindings = {"w1": Polynomial.parse("s1*s2")}
        assert expand_to_base(p, bindings) == Polynomial.parse("s1*s2 + s3")

    def test_nested_substitution(self):
        bindings = {
            "w2": Polynomial.parse("w1*s3"),
            "w1": Polynomial.parse("s1 + s2"),
        }
        expanded = expand_to_base(Polynomial.parse("w2"), bindings)
        assert expanded == Polynomial.parse("s1*s3 + s2*s3")

    def test_coefficients_and_exponents_compose(self):
        bindings = {"w1": Polynomial.parse("2*s1")}
        expanded = expand_to_base(Polynomial.parse("w1^2"), bindings)
        assert expanded == Polynomial.parse("4*s1^2")

"""The asyncio serving tier's own contract, beyond byte-identity.

``tests/test_server.py`` already runs the protocol suite and the
30-seed differential against both tiers; this module pins what only
the async tier promises:

* **loop-confined single-flight** — N concurrent identical misses park
  on one :class:`asyncio.Future` while a single leader computes, with
  leader failures propagated and leader cancellation handed over;
* **backpressure** — past ``max_pending`` admitted engine-bound
  requests, new ones are shed with an immediate 503 + ``Retry-After``
  on a still-alive connection (``/stats``/``/metrics`` stay exempt);
* **deadlines** — stalled clients get a 408 (body) or a quiet close
  (idle keep-alive) instead of pinning anything;
* **chunked streaming** — large response bodies leave in
  ``Transfer-Encoding: chunked`` frames, byte-identical after
  reassembly;
* **graceful drain** — shutdown lets in-flight requests finish in both
  serving modes.
"""

import asyncio
import json
import socket
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.db.generators import random_database
from repro.errors import EvaluationError
from repro.server.aio import AsyncProvenanceServer
from repro.server.app import ProvenanceServer, make_server
from repro.server.cache import AsyncResultCache, ResultCache

from test_server import (
    JOIN,
    UNION,
    Client,
    expected_query_body,
    serve,
    small_db,
)

#: Same leak discipline as the threaded suite: an unclosed loop,
#: socket, executor or transport must fail the test, not just warn.
pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")


# ----------------------------------------------------------------------
# The facade: make_server dispatch and the blocking lifecycle
# ----------------------------------------------------------------------
class TestFacade:
    def test_make_server_dispatches_on_mode(self):
        with make_server(small_db(), server_mode="async") as server:
            assert isinstance(server, AsyncProvenanceServer)
            assert server.state.config.server_mode == "async"
            assert server.server_address[1] > 0
        with make_server(small_db(), server_mode="threaded") as server:
            assert isinstance(server, ProvenanceServer)
            assert server.state.config.server_mode == "threaded"

    def test_default_mode_is_the_config_default(self):
        with make_server(small_db()) as server:
            assert isinstance(server, ProvenanceServer)

    def test_invalid_mode_is_rejected(self):
        with pytest.raises(EvaluationError, match="server_mode"):
            make_server(small_db(), server_mode="fibers")

    def test_shutdown_before_serve_returns_immediately(self):
        server = make_server(small_db(), server_mode="async")
        server.shutdown()  # must not hang waiting for a loop
        server.close()

    def test_close_is_idempotent(self):
        server = make_server(small_db(), server_mode="async")
        server.close()
        server.close()

    def test_repr_names_the_address(self):
        with make_server(small_db(), server_mode="async") as server:
            assert "AsyncProvenanceServer" in repr(server)


# ----------------------------------------------------------------------
# AsyncResultCache: single-flight on the loop
# ----------------------------------------------------------------------
class TestAsyncResultCache:
    def test_single_flight_computes_once(self):
        async def scenario():
            cache = AsyncResultCache()
            calls = []
            release = asyncio.Event()

            async def compute():
                calls.append(1)
                await release.wait()
                return "value", True

            tasks = [
                asyncio.ensure_future(cache.get_or_compute("k", compute))
                for _ in range(8)
            ]
            await asyncio.sleep(0)  # every caller reaches the ledger
            release.set()
            results = await asyncio.gather(*tasks)
            return calls, results, cache.stats()

        calls, results, stats = asyncio.run(scenario())
        assert len(calls) == 1  # the engine ran once for 8 callers
        assert results == ["value"] * 8
        assert stats["misses"] == 1
        assert stats["dedup_hits"] == 7
        assert stats["single_flight_waiters"] == 7

    def test_leader_failure_propagates_and_caches_nothing(self):
        async def scenario():
            cache = AsyncResultCache()
            release = asyncio.Event()

            async def compute():
                await release.wait()
                raise RuntimeError("engine exploded")

            tasks = [
                asyncio.ensure_future(cache.get_or_compute("k", compute))
                for _ in range(4)
            ]
            await asyncio.sleep(0)
            release.set()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)

            async def recover():
                return "ok", True

            recovered = await cache.get_or_compute("k", recover)
            return outcomes, cache.get("k"), recovered

        outcomes, cached_after_failure, recovered = asyncio.run(scenario())
        assert [str(error) for error in outcomes] == ["engine exploded"] * 4
        assert all(isinstance(error, RuntimeError) for error in outcomes)
        assert recovered == "ok"  # the key was never poisoned

    def test_uncacheable_results_are_returned_but_not_stored(self):
        async def scenario():
            cache = AsyncResultCache()

            async def compute():
                return "fresh", False

            value = await cache.get_or_compute("k", compute)
            return value, cache.get("k"), len(cache)

        value, cached, size = asyncio.run(scenario())
        assert value == "fresh"
        assert cached is None and size == 0

    def test_cancelled_leader_hands_over_to_a_waiter(self):
        async def scenario():
            cache = AsyncResultCache()
            release = asyncio.Event()

            async def slow():
                await release.wait()
                return "slow", True

            async def quick():
                return "quick", True

            leader = asyncio.ensure_future(cache.get_or_compute("k", slow))
            await asyncio.sleep(0)
            waiter = asyncio.ensure_future(cache.get_or_compute("k", quick))
            await asyncio.sleep(0)
            leader.cancel()  # the leader's client hung up mid-flight
            value = await waiter
            return value, cache.get("k")

        value, cached = asyncio.run(scenario())
        assert value == "quick"  # the waiter recomputed, not failed
        assert cached == "quick"

    def test_waiter_cancellation_does_not_kill_the_flight(self):
        async def scenario():
            cache = AsyncResultCache()
            release = asyncio.Event()

            async def compute():
                await release.wait()
                return "value", True

            leader = asyncio.ensure_future(cache.get_or_compute("k", compute))
            await asyncio.sleep(0)
            waiter = asyncio.ensure_future(cache.get_or_compute("k", compute))
            await asyncio.sleep(0)
            waiter.cancel()  # one impatient client; the leader survives
            release.set()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            return await leader

        assert asyncio.run(scenario()) == "value"

    def test_stats_shape_matches_the_threaded_cache(self):
        assert set(AsyncResultCache().stats()) == set(ResultCache().stats())

    def test_lru_eviction_and_capacity(self):
        cache = AsyncResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # bump a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.stats()["evictions"] == 1
        assert cache.capacity == 2
        with pytest.raises(ValueError):
            AsyncResultCache(capacity=0)
        assert "AsyncResultCache" in repr(cache)


# ----------------------------------------------------------------------
# Single-flight over HTTP, on the loop
# ----------------------------------------------------------------------
class TestAsyncSingleFlight:
    def test_concurrent_identical_queries_run_engine_once(self):
        with serve(small_db(), server_mode="async") as (server, client):
            state = server.state
            original = state.compute_query_entry
            calls = []
            release = threading.Event()

            def gated(query, version):
                calls.append(1)
                release.wait(15)
                return original(query, version)

            state.compute_query_entry = gated
            outcomes = []

            def fire():
                outcomes.append(client.post("/query", {"query": JOIN}))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            deadline = time.time() + 10
            while time.time() < deadline:
                if state.stats()["requests"]["active"] >= 6:
                    break
                time.sleep(0.01)
            release.set()
            for thread in threads:
                thread.join(15)

            assert len(calls) == 1  # six requests, one engine run
            assert {status for status, _ in outcomes} == {200}
            assert len({body for _, body in outcomes}) == 1
            stats = state.cache.stats()
            assert stats["misses"] == 1
            assert stats["dedup_hits"] + stats["hits"] == 5


# ----------------------------------------------------------------------
# Backpressure: the bounded engine-work gate
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_gate_sheds_with_503_and_retry_after(self):
        with serve(
            small_db(), server_mode="async", max_pending=1
        ) as (server, client):
            state = server.state
            original = state.compute_query_entry
            started = threading.Event()
            release = threading.Event()

            def gated(query, version):
                started.set()
                release.wait(15)
                return original(query, version)

            state.compute_query_entry = gated
            slow_results = []

            def slow_request():
                slow_results.append(client.post("/query", {"query": JOIN}))

            worker = threading.Thread(target=slow_request)
            worker.start()
            try:
                assert started.wait(10)  # the gate is now full
                conn = HTTPConnection(client.host, client.port, timeout=30)
                try:
                    # A *different* query needs new engine work: shed.
                    conn.request(
                        "POST", "/query", body=json.dumps({"query": UNION})
                    )
                    response = conn.getresponse()
                    body = response.read()
                    assert response.status == 503
                    assert response.getheader("Retry-After") == "1"
                    assert b"capacity" in body
                    # Shedding kept the connection alive, and the
                    # exempt endpoints still answer on it.
                    conn.request("GET", "/stats")
                    response = conn.getresponse()
                    assert response.status == 200
                    stats = json.loads(response.read())
                    assert stats["requests"]["active"] >= 1
                finally:
                    conn.close()
            finally:
                release.set()
            worker.join(15)
            assert [status for status, _ in slow_results] == [200]
            # The rejection was counted for operators.
            _status, raw = client.get("/metrics")
            lines = [
                line
                for line in raw.decode("utf-8").splitlines()
                if line.startswith("repro_server_backpressure_total")
            ]
            assert lines and float(lines[0].rpartition(" ")[2]) == 1.0

    def test_metrics_exposes_the_gauges(self):
        with serve(small_db(), server_mode="async") as (server, client):
            client.post("/query", {"query": JOIN})
            _status, raw = client.get("/metrics")
            text = raw.decode("utf-8")
            assert "repro_server_pending_requests" in text
            assert "repro_server_open_connections" in text


# ----------------------------------------------------------------------
# Deadlines and streaming
# ----------------------------------------------------------------------
class TestDeadlinesAndStreaming:
    def test_idle_keep_alive_connection_is_closed_quietly(self):
        with serve(
            small_db(), server_mode="async", idle_timeout=0.3
        ) as (server, client):
            with socket.create_connection(
                (client.host, client.port), timeout=10
            ) as sock:
                sock.settimeout(10)
                # No request: the idle deadline closes it, no response.
                assert sock.recv(1024) == b""

    def test_partial_request_line_then_hang_is_closed_quietly(self):
        with serve(
            small_db(), server_mode="async", idle_timeout=0.3
        ) as (server, client):
            with socket.create_connection(
                (client.host, client.port), timeout=10
            ) as sock:
                sock.sendall(b"POST /que")  # never finishes the line
                sock.settimeout(10)
                assert sock.recv(1024) == b""

    def test_large_bodies_stream_chunked_and_reassemble_identically(self):
        db = random_database(
            {"R": 2, "S": 2}, list(range(8)), n_facts=40, seed=3
        )
        with serve(
            db, server_mode="async", stream_threshold=256
        ) as (server, client):
            version = server.state.session.db_version()
            expected = expected_query_body(JOIN, db, version)
            assert len(expected) >= 256  # the body crosses the threshold
            conn = HTTPConnection(client.host, client.port, timeout=30)
            try:
                conn.request(
                    "POST", "/query", body=json.dumps({"query": JOIN})
                )
                response = conn.getresponse()
                body = response.read()
                assert response.status == 200
                assert response.getheader("Transfer-Encoding") == "chunked"
                assert response.getheader("Content-Length") is None
                assert body == expected  # identical after reassembly
                # Keep-alive survives a chunked response.
                conn.request("GET", "/stats")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
            finally:
                conn.close()

    def test_small_bodies_stay_content_length_framed(self):
        with serve(small_db(), server_mode="async") as (server, client):
            conn = HTTPConnection(client.host, client.port, timeout=30)
            try:
                conn.request(
                    "POST", "/query", body=json.dumps({"query": JOIN})
                )
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                assert response.getheader("Transfer-Encoding") is None
                assert response.getheader("Content-Length") is not None
            finally:
                conn.close()


# ----------------------------------------------------------------------
# Graceful shutdown drains in-flight requests (both modes)
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    @pytest.mark.parametrize("mode", ["async", "threaded"])
    def test_shutdown_lets_in_flight_requests_finish(self, mode):
        server = make_server(small_db(), server_mode=mode)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        release = threading.Event()
        try:
            state = server.state
            original = state.compute_query_entry
            started = threading.Event()

            def gated(query, version):
                started.set()
                release.wait(15)
                return original(query, version)

            state.compute_query_entry = gated
            client = Client(server)
            results = []

            def fire():
                results.append(client.post("/query", {"query": JOIN}))

            worker = threading.Thread(target=fire)
            worker.start()
            assert started.wait(10)  # the request is now in flight
            stopper = threading.Thread(target=server.shutdown)
            stopper.start()
            time.sleep(0.2)  # shutdown is draining, not killing
            release.set()
            worker.join(15)
            stopper.join(15)
            assert not stopper.is_alive()
            # The in-flight request completed across the shutdown.
            assert [status for status, _ in results] == [200]
        finally:
            release.set()
            server.shutdown()
            server.close()
            thread.join(timeout=10)

"""Tests for derivation explanations (why and why-not)."""

import pytest

from repro.db.instance import AnnotatedDatabase
from repro.explain import explain_missing, explain_tuple
from repro.paperdata import figure1, table2_database
from repro.query.parser import parse_query
from repro.semiring.polynomial import Monomial


class TestWhy:
    def test_all_derivations_listed(self):
        fig = figure1()
        db = table2_database()
        derivations = explain_tuple(fig.q_conj, db, ("a",))
        assert len(derivations) == 2
        monomials = {d.monomial for d in derivations}
        assert monomials == {Monomial(["s1", "s1"]), Monomial(["s2", "s3"])}

    def test_core_flag(self):
        """The squared derivation's support IS a core monomial (s1), so
        both derivations of (a) have core supports; for a containing
        derivation the flag goes false."""
        db = AnnotatedDatabase.from_dict(
            {"R": {("a", "a"): "s1", ("a", "b"): "s2", ("b", "a"): "s3"}}
        )
        query = parse_query("ans() :- R(x, y), R(y, z), R(z, x)")
        derivations = explain_tuple(query, db, ())
        by_support = {d.monomial.support(): d.in_core for d in derivations}
        assert by_support[Monomial(["s1"])] is True
        assert by_support[Monomial(["s1", "s2", "s3"])] is False

    def test_union_adjunct_indices(self):
        fig = figure1()
        db = table2_database()
        derivations = explain_tuple(fig.q_union, db, ("a",))
        assert {d.adjunct_index for d in derivations} == {0, 1}

    def test_describe_renders(self):
        fig = figure1()
        db = table2_database()
        text = explain_tuple(fig.q_conj, db, ("a",))[0].describe()
        assert "matched" in text and "monomial" in text

    def test_absent_tuple_has_no_derivations(self):
        fig = figure1()
        db = table2_database()
        assert explain_tuple(fig.q_conj, db, ("zzz",)) == []


class TestWhyNot:
    @pytest.fixture
    def db(self):
        return AnnotatedDatabase.from_dict(
            {"R": {("a", "b"): "s1", ("b", "c"): "s2"}}
        )

    def test_blocked_at_second_atom(self, db):
        query = parse_query("ans(x) :- R(x, y), R(y, x)")
        (explanation,) = explain_missing(query, db, ("a",))
        assert explanation.atoms_satisfied == 1
        assert "R(y, x)" in explanation.blocking

    def test_blocked_at_first_atom(self, db):
        query = parse_query("ans(x) :- R(x, y)")
        (explanation,) = explain_missing(query, db, ("z",))
        assert explanation.atoms_satisfied == 0
        assert "R(x, y)" in explanation.blocking

    def test_blocked_by_disequality(self):
        db = AnnotatedDatabase.from_dict({"R": {("a", "a"): "s1"}})
        query = parse_query("ans(x) :- R(x, y), x != y")
        (explanation,) = explain_missing(query, db, ("a",))
        assert "disequality" in explanation.blocking

    def test_head_constant_mismatch(self, db):
        query = parse_query("ans('k') :- R(x, y)")
        (explanation,) = explain_missing(query, db, ("q",))
        assert "head constant" in explanation.blocking

    def test_arity_mismatch(self, db):
        query = parse_query("ans(x) :- R(x, y)")
        (explanation,) = explain_missing(query, db, ("a", "b"))
        assert "arity" in explanation.blocking

    def test_present_tuple_rejected(self, db):
        query = parse_query("ans(x) :- R(x, y)")
        with pytest.raises(ValueError):
            explain_missing(query, db, ("a",))

    def test_union_explains_every_adjunct(self, db):
        query = parse_query("ans(x) :- R(x, x)\nans(x) :- R(x, y), R(y, x)")
        explanations = explain_missing(query, db, ("a",))
        assert len(explanations) == 2
        assert all(e.describe() for e in explanations)

"""Unit tests for constrained partition enumeration."""

import pytest

from repro.utils.partitions import (
    bell_number,
    constrained_partitions,
    count_partitions,
)


class TestUnconstrained:
    @pytest.mark.parametrize("n,expected", [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15)])
    def test_bell_counts(self, n, expected):
        assert count_partitions(list(range(n))) == expected

    def test_bell_number_function(self):
        assert [bell_number(i) for i in range(8)] == [1, 1, 2, 5, 15, 52, 203, 877]

    def test_bell_number_rejects_negative(self):
        with pytest.raises(ValueError):
            bell_number(-1)

    def test_partitions_cover_all_items(self):
        items = ["a", "b", "c"]
        for partition in constrained_partitions(items):
            flattened = sorted(x for block in partition for x in block)
            assert flattened == items

    def test_blocks_are_disjoint(self):
        for partition in constrained_partitions(list(range(4))):
            seen = set()
            for block in partition:
                assert not (seen & set(block))
                seen.update(block)

    def test_partitions_distinct(self):
        partitions = [
            frozenset(frozenset(b) for b in p)
            for p in constrained_partitions(list(range(4)))
        ]
        assert len(partitions) == len(set(partitions))


class TestConstraints:
    def test_separation_constraint(self):
        parts = list(constrained_partitions(["x", "y"], separate=[("x", "y")]))
        assert parts == [(("x",), ("y",))]

    def test_separation_reduces_count(self):
        free = count_partitions(["x", "y", "z"])
        constrained = count_partitions(["x", "y", "z"], separate=[("x", "y")])
        assert constrained < free

    def test_singletons_never_merge(self):
        parts = list(constrained_partitions(["x", "a", "b"], singletons=["a", "b"]))
        for partition in parts:
            for block in partition:
                assert sum(1 for item in block if item in ("a", "b")) <= 1

    def test_example_4_2_count(self):
        # Var = {x, y}, C = {a, b}; constraints x != a, x != y: 5 cases.
        count = count_partitions(
            ["x", "y", "a", "b"],
            separate=[("x", "a"), ("x", "y")],
            singletons=["a", "b"],
        )
        assert count == 5

    def test_self_separation_rejected(self):
        with pytest.raises(ValueError):
            list(constrained_partitions(["x"], separate=[("x", "x")]))

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            list(constrained_partitions(["x", "x"]))

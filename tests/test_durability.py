"""Unit tests for the durability subsystem (snapshots + WAL + store).

The byte formats themselves are fuzzed in ``test_durability_codecs.py``
and the subprocess SIGKILL differential lives in
``test_crash_recovery.py``; this module covers the deterministic unit
behavior: round trips, rotation, pruning, corrupt-generation fallback,
recovery wiring and the server integration.
"""

import json
import os

import pytest

from repro.config import EngineConfig
from repro.db.instance import AnnotatedDatabase
from repro.durability import (
    DurableStore,
    WriteAheadLog,
    decode_snapshot,
    encode_record,
    encode_snapshot,
    read_snapshot,
    scan_wal,
    write_snapshot,
)
from repro.durability.store import RecoveredState
from repro.errors import DurabilityError, ReproError, SnapshotError, WalError
from repro.incremental.delta import Delta
from repro.incremental.registry import ViewRegistry
from repro.io import delta_to_dict
from repro.obs import MetricsRegistry
from repro.query.parser import parse_query
from repro.server.app import ServerState


def small_db() -> AnnotatedDatabase:
    return AnnotatedDatabase.from_rows(
        {"R": [("a", "b"), ("b", "c")], "S": [("c",)]}
    )


PROGRAM = {
    "V": parse_query("V(x, z) :- R(x, y), R(y, z)"),
    "W": parse_query("W(x) :- V(x, z), S(z)"),
}


def db_facts(db: AnnotatedDatabase):
    return sorted(db.all_facts(), key=repr)


# ----------------------------------------------------------------------
# Snapshot codec
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    def test_database_round_trip(self):
        db = small_db()
        content = decode_snapshot(encode_snapshot(db.checkpoint_state()))
        restored = AnnotatedDatabase.from_checkpoint(content.checkpoint)
        assert db_facts(restored) == db_facts(db)
        assert restored.version() == db.version()

    def test_non_string_cells_round_trip(self):
        db = AnnotatedDatabase()
        db.add("T", (1, "x"))
        db.add("T", (2.5, None))
        db.add("T", (True, (1, 2)))
        content = decode_snapshot(encode_snapshot(db.checkpoint_state()))
        restored = AnnotatedDatabase.from_checkpoint(content.checkpoint)
        assert db_facts(restored) == db_facts(db)

    def test_empty_declared_relation_survives(self):
        db = small_db()
        db.declare_relation("Empty", 3)
        content = decode_snapshot(encode_snapshot(db.checkpoint_state()))
        restored = AnnotatedDatabase.from_checkpoint(content.checkpoint)
        assert restored.arity("Empty") == 3
        assert restored.rows("Empty") == []

    def test_name_supply_continues_after_restore(self):
        db = small_db()
        content = decode_snapshot(encode_snapshot(db.checkpoint_state()))
        restored = AnnotatedDatabase.from_checkpoint(content.checkpoint)
        fresh_original = db.add("R", ("x", "y"))
        fresh_restored = restored.add("R", ("x", "y"))
        assert fresh_restored == fresh_original

    def test_version_round_trips_through_header(self):
        db = small_db()
        db.add("R", ("q", "r"))
        data = encode_snapshot(db.checkpoint_state())
        assert decode_snapshot(data).db_version == db.version()

    def test_intern_state_round_trips(self):
        state = (["s1", "s2", "s3"], [(0, 1), (2, 2, 2), ()])
        data = encode_snapshot(
            small_db().checkpoint_state(), intern_state=state
        )
        assert decode_snapshot(data).intern_state == state

    def test_registry_state_round_trips(self):
        db = small_db()
        registry = ViewRegistry(
            PROGRAM, db, config=EngineConfig(engine="hashjoin")
        )
        state = registry.materialized_state()
        data = encode_snapshot(
            registry.serving_db.checkpoint_state(), registry_state=state
        )
        assert decode_snapshot(data).registry_state == json.loads(
            json.dumps(state)
        )

    def test_atomic_write_and_read(self, tmp_path):
        path = str(tmp_path / "snap.rpsn")
        db = small_db()
        write_snapshot(path, encode_snapshot(db.checkpoint_state()))
        assert not [p for p in os.listdir(str(tmp_path)) if "tmp" in p]
        content = read_snapshot(path)
        assert content.db_version == db.version()

    def test_read_missing_file_is_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(str(tmp_path / "nope.rpsn"))


class TestSnapshotValidation:
    def test_bad_magic_rejected(self):
        data = encode_snapshot(small_db().checkpoint_state())
        with pytest.raises(SnapshotError):
            decode_snapshot(b"XXXX" + data[4:])

    def test_unknown_format_version_rejected(self):
        data = bytearray(encode_snapshot(small_db().checkpoint_state()))
        data[4] = 99
        with pytest.raises(SnapshotError):
            decode_snapshot(bytes(data))

    def test_truncated_payload_rejected(self):
        data = encode_snapshot(small_db().checkpoint_state())
        with pytest.raises(SnapshotError):
            decode_snapshot(data[: len(data) - 7])

    def test_corrupt_section_checksum_rejected(self):
        data = bytearray(encode_snapshot(small_db().checkpoint_state()))
        data[-1] ^= 0xFF
        with pytest.raises(SnapshotError):
            decode_snapshot(bytes(data))


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    PAYLOADS = [
        {"insert": {"R": [{"row": ["x", "y"], "annotation": "s9"}]}},
        {"delete": {"R": [["a", "b"]]}},
        {"retag": {"S": [{"row": ["c"], "annotation": "t1"}]}},
    ]

    def test_append_then_scan(self, tmp_path):
        path = str(tmp_path / "wal.rpwl")
        with WriteAheadLog.create(path, base_version=7) as wal:
            for payload in self.PAYLOADS:
                wal.append(payload)
        base, records, _, torn = scan_wal(path)
        assert (base, torn) == (7, False)
        assert records == self.PAYLOADS

    def test_reopen_continues_appending(self, tmp_path):
        path = str(tmp_path / "wal.rpwl")
        with WriteAheadLog.create(path, base_version=0) as wal:
            wal.append(self.PAYLOADS[0])
        with WriteAheadLog.open(path) as wal:
            assert wal.records == 1
            wal.append(self.PAYLOADS[1])
        assert scan_wal(path)[1] == self.PAYLOADS[:2]

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "wal.rpwl")
        with WriteAheadLog.create(path, base_version=0) as wal:
            wal.append(self.PAYLOADS[0])
            wal.append(self.PAYLOADS[1])
        frame = encode_record(self.PAYLOADS[2])
        with open(path, "ab") as handle:
            handle.write(frame[: len(frame) - 3])
        base, records, _, torn = scan_wal(path)
        assert torn and records == self.PAYLOADS[:2]
        with WriteAheadLog.open(path) as wal:
            assert wal.records == 2
            wal.append(self.PAYLOADS[2])
        base, records, _, torn = scan_wal(path)
        assert not torn and records == self.PAYLOADS

    def test_bitflip_in_record_truncates_from_there(self, tmp_path):
        path = str(tmp_path / "wal.rpwl")
        with WriteAheadLog.create(path, base_version=0) as wal:
            for payload in self.PAYLOADS:
                wal.append(payload)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 4)
            handle.write(b"\xff")
        _, records, _, torn = scan_wal(path)
        assert torn and records == self.PAYLOADS[:2]

    def test_corrupt_header_is_wal_error(self, tmp_path):
        path = str(tmp_path / "wal.rpwl")
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\x00" * 12)
        with pytest.raises(WalError):
            scan_wal(path)

    def test_create_refuses_to_overwrite(self, tmp_path):
        path = str(tmp_path / "wal.rpwl")
        WriteAheadLog.create(path, base_version=0).close()
        with pytest.raises(OSError):
            WriteAheadLog.create(path, base_version=0)


# ----------------------------------------------------------------------
# DurableStore
# ----------------------------------------------------------------------
class TestDurableStoreBare:
    def test_bare_snapshot_and_recover(self, tmp_path):
        db = small_db()
        with DurableStore(str(tmp_path)) as store:
            store.snapshot(db)
            for delta in (
                Delta(inserts=[("R", ("x", "y"), None)]),
                Delta(deletes=[("S", ("c",))]),
            ):
                store.log_update(delta_to_dict(delta))
        oracle = small_db()
        oracle.add("R", ("x", "y"))
        oracle.remove("S", ("c",))
        with DurableStore(str(tmp_path)) as store:
            recovered = store.recover()
            assert isinstance(recovered, RecoveredState)
            assert recovered.replayed == 2 and recovered.skipped == 0
            assert recovered.registry is None
            assert db_facts(recovered.db) == db_facts(oracle)
            assert recovered.version == oracle.version()

    def test_empty_dir_has_no_state(self, tmp_path):
        with DurableStore(str(tmp_path)) as store:
            assert not store.has_state()
            with pytest.raises(DurabilityError, match="nothing to recover"):
                store.recover()

    def test_replay_skips_deterministically_failing_deltas(self, tmp_path):
        with DurableStore(str(tmp_path)) as store:
            store.snapshot(small_db())
            store.log_update(
                delta_to_dict(Delta(deletes=[("R", ("no", "such"))]))
            )
            store.log_update(
                delta_to_dict(Delta(inserts=[("R", ("x", "y"), None)]))
            )
        with DurableStore(str(tmp_path)) as store:
            recovered = store.recover()
        assert recovered.replayed == 1 and recovered.skipped == 1
        assert ("R", ("x", "y")) in [
            (rel, row) for rel, row, _ in recovered.db.all_facts()
        ]

    def test_recover_falls_back_to_previous_generation(self, tmp_path):
        with DurableStore(str(tmp_path), snapshot_every=1) as store:
            db = small_db()
            store.snapshot(db)
            db.add("R", ("x", "y"))
            store.snapshot(db)
        snapshots = DurableStore(str(tmp_path)).snapshot_files()
        assert len(snapshots) == 2
        with open(snapshots[-1][1], "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff\xff\xff")
        with DurableStore(str(tmp_path)) as store:
            recovered = store.recover()
        assert recovered.snapshot_version == snapshots[0][0]

    def test_all_snapshots_corrupt_is_an_error(self, tmp_path):
        with DurableStore(str(tmp_path)) as store:
            store.snapshot(small_db())
        (snap,) = DurableStore(str(tmp_path)).snapshot_files()
        with open(snap[1], "r+b") as handle:
            handle.seek(6)
            handle.write(b"\xff\xff\xff\xff")
        with DurableStore(str(tmp_path)) as store:
            with pytest.raises(SnapshotError, match="snapshot"):
                store.recover()

    def test_rotation_prunes_old_generations(self, tmp_path):
        db = small_db()
        with DurableStore(
            str(tmp_path), snapshot_every=1, keep_snapshots=2
        ) as store:
            store.snapshot(db)
            for i in range(4):
                store.log_update(
                    delta_to_dict(
                        Delta(inserts=[("R", ("n%d" % i, "m%d" % i), None)])
                    )
                )
                assert store.should_rotate()
                db.add("R", ("n%d" % i, "m%d" % i))
                store.snapshot(db)
            assert len(store.snapshot_files()) == 2
            wal_bases = [base for base, _ in store.wal_files()]
            assert min(wal_bases) >= store.snapshot_files()[0][0]
        with DurableStore(str(tmp_path)) as store:
            recovered = store.recover()
        assert db_facts(recovered.db) == db_facts(db)

    def test_wal_records_metric_increments(self, tmp_path):
        registry = MetricsRegistry()
        with DurableStore(str(tmp_path), metrics=registry) as store:
            store.snapshot(small_db())
            store.log_update(
                delta_to_dict(Delta(inserts=[("R", ("x", "y"), None)]))
            )
        assert "repro_wal_records_total 1" in registry.render()

    def test_stats_fields(self, tmp_path):
        with DurableStore(str(tmp_path)) as store:
            store.snapshot(small_db())
            stats = store.stats()
        assert stats["data_dir"] == str(tmp_path)
        assert stats["wal_records"] == 0
        assert stats["snapshots"] == 1
        assert stats["last_snapshot_version"] == small_db().version()
        assert stats["snapshot_every"] > 0


class TestDurableStoreRegistry:
    def seed(self, tmp_path) -> AnnotatedDatabase:
        db = small_db()
        registry = ViewRegistry(
            PROGRAM, db, config=EngineConfig(engine="hashjoin")
        )
        with DurableStore(str(tmp_path)) as store:
            store.snapshot(registry.serving_db, registry)
            delta = Delta(inserts=[("R", ("c", "a"), None)])
            store.log_update(delta_to_dict(delta))
            registry.apply(delta)
        return registry.serving_db

    def test_registry_recover_matches_live_maintenance(self, tmp_path):
        live = self.seed(tmp_path)
        with DurableStore(str(tmp_path)) as store:
            recovered = store.recover(program=PROGRAM)
        assert recovered.registry is not None
        assert db_facts(recovered.registry.serving_db) == db_facts(live)
        assert recovered.registry.db_version() == live.version()

    def test_recovered_registry_keeps_maintaining(self, tmp_path):
        self.seed(tmp_path)
        with DurableStore(str(tmp_path)) as store:
            recovered = store.recover(program=PROGRAM)
        report = recovered.registry.apply(
            Delta(inserts=[("S", ("b",), None)])
        )
        assert "W" in report.touched_views()
        assert recovered.registry.read_view("V")

    def test_program_mismatch_raises(self, tmp_path):
        self.seed(tmp_path)
        with DurableStore(str(tmp_path)) as store:
            with pytest.raises(ReproError, match="view program"):
                store.recover(
                    program={"Z": parse_query("Z(x) :- R(x, y)")}
                )

    def test_bare_recover_of_registry_snapshot_raises(self, tmp_path):
        self.seed(tmp_path)
        with DurableStore(str(tmp_path)) as store:
            with pytest.raises(DurabilityError, match="program"):
                store.recover()

    def test_registry_recover_of_bare_snapshot_raises(self, tmp_path):
        with DurableStore(str(tmp_path)) as store:
            store.snapshot(small_db())
        with DurableStore(str(tmp_path)) as store:
            with pytest.raises(DurabilityError, match="program"):
                store.recover(program=PROGRAM)


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------
UPDATE = {"insert": {"R": [{"row": ["c", "a"], "annotation": "u1"}]}}


class TestServerDurability:
    def boot(self, tmp_path, program=None, **kwargs) -> ServerState:
        return ServerState(
            small_db(), program=program, data_dir=str(tmp_path), **kwargs
        )

    def test_restart_serves_identical_bytes(self, tmp_path):
        with self.boot(tmp_path) as state:
            state.apply_update(UPDATE)
            before = state.run_query("ans(x, y) :- R(x, y)")
            version = state.stats()["db_version"]
        with self.boot(tmp_path) as state:
            assert state.recovery is not None
            assert state.stats()["db_version"] == version
            assert state.run_query("ans(x, y) :- R(x, y)") == before

    def test_registry_restart_serves_identical_views(self, tmp_path):
        with self.boot(tmp_path, program=PROGRAM) as state:
            state.apply_update(UPDATE)
            view = state.read_view("V")
            query = state.run_query("ans(x) :- W(x)")
        with self.boot(tmp_path, program=PROGRAM) as state:
            assert state.recovery is not None
            assert state.read_view("V") == view
            assert state.run_query("ans(x) :- W(x)") == query

    def test_config_data_dir_equivalent_to_kwarg(self, tmp_path):
        config = EngineConfig(engine="hashjoin", data_dir=str(tmp_path))
        with ServerState(small_db(), config=config) as state:
            assert state.store is not None
            state.apply_update(UPDATE)
        with ServerState(small_db(), config=config) as state:
            assert state.recovery is not None
            assert state.recovery.replayed == 1

    def test_rotation_threshold_respected(self, tmp_path):
        with self.boot(tmp_path, snapshot_every=1) as state:
            state.apply_update(UPDATE)
            assert len(state.store.snapshot_files()) == 2

    def test_stats_exposes_durability(self, tmp_path):
        with self.boot(tmp_path) as state:
            payload = state.stats()
            assert payload["durability"]["data_dir"] == str(tmp_path)

    def test_rejected_update_is_not_replayed(self, tmp_path):
        bad = {"delete": {"R": [["no", "such"]]}}
        with self.boot(tmp_path) as state:
            with pytest.raises(ReproError):
                state.apply_update(bad)
            state.apply_update(UPDATE)
            version = state.stats()["db_version"]
        with self.boot(tmp_path) as state:
            assert state.stats()["db_version"] == version

    def test_no_data_dir_means_no_store(self):
        with ServerState(small_db()) as state:
            assert state.store is None and state.recovery is None
            assert "durability" not in state.stats()

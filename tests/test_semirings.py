"""Unit tests for the concrete semirings and their structural laws."""

import pytest

from repro.semiring.boolean import BooleanSemiring
from repro.semiring.lineage import LineageSemiring, lineage_of
from repro.semiring.natural import NaturalSemiring
from repro.semiring.polynomial import Polynomial
from repro.semiring.security import Clearance, SecuritySemiring
from repro.semiring.trio import TrioSemiring, trio_of
from repro.semiring.tropical import TropicalSemiring
from repro.semiring.viterbi import ViterbiSemiring
from repro.semiring.whyprov import WhySemiring


def _samples(semiring):
    """A few representative elements per semiring for law checks."""
    if isinstance(semiring, BooleanSemiring):
        return [False, True]
    if isinstance(semiring, NaturalSemiring):
        return [0, 1, 2, 5]
    if isinstance(semiring, TropicalSemiring):
        return [semiring.zero, 0.0, 1.0, 2.5]
    if isinstance(semiring, ViterbiSemiring):
        return [0.0, 0.25, 0.5, 1.0]
    if isinstance(semiring, SecuritySemiring):
        return list(Clearance)
    if isinstance(semiring, WhySemiring):
        x = WhySemiring.variable("x")
        y = WhySemiring.variable("y")
        return [semiring.zero, semiring.one, x, semiring.mul(x, y)]
    if isinstance(semiring, LineageSemiring):
        x = LineageSemiring.variable("x")
        y = LineageSemiring.variable("y")
        return [semiring.zero, semiring.one, x, semiring.mul(x, y)]
    if isinstance(semiring, TrioSemiring):
        return [
            semiring.zero,
            semiring.one,
            Polynomial.parse("x"),
            Polynomial.parse("x*y + 2*z"),
        ]
    raise AssertionError("no samples for {!r}".format(semiring))


ALL_SEMIRINGS = [
    BooleanSemiring(),
    NaturalSemiring(),
    TropicalSemiring(),
    ViterbiSemiring(),
    SecuritySemiring(),
    WhySemiring(),
    LineageSemiring(),
    TrioSemiring(),
]


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: type(s).__name__)
class TestSemiringLaws:
    def test_additive_unit(self, semiring):
        for a in _samples(semiring):
            assert semiring.add(a, semiring.zero) == a

    def test_multiplicative_unit(self, semiring):
        for a in _samples(semiring):
            assert semiring.mul(a, semiring.one) == a

    def test_annihilation(self, semiring):
        for a in _samples(semiring):
            assert semiring.mul(a, semiring.zero) == semiring.zero

    def test_commutativity(self, semiring):
        samples = _samples(semiring)
        for a in samples:
            for b in samples:
                assert semiring.add(a, b) == semiring.add(b, a)
                assert semiring.mul(a, b) == semiring.mul(b, a)

    def test_associativity(self, semiring):
        samples = _samples(semiring)[:3]
        for a in samples:
            for b in samples:
                for c in samples:
                    assert semiring.add(semiring.add(a, b), c) == semiring.add(
                        a, semiring.add(b, c)
                    )
                    assert semiring.mul(semiring.mul(a, b), c) == semiring.mul(
                        a, semiring.mul(b, c)
                    )

    def test_distributivity(self, semiring):
        samples = _samples(semiring)[:3]
        for a in samples:
            for b in samples:
                for c in samples:
                    left = semiring.mul(a, semiring.add(b, c))
                    right = semiring.add(semiring.mul(a, b), semiring.mul(a, c))
                    assert left == right

    def test_declared_idempotence_holds(self, semiring):
        if semiring.idempotent_add:
            for a in _samples(semiring):
                assert semiring.add(a, a) == a

    def test_declared_absorptivity_holds(self, semiring):
        if semiring.absorptive:
            for a in _samples(semiring):
                for b in _samples(semiring):
                    assert semiring.add(a, semiring.mul(a, b)) == a


class TestTimesAndPower:
    def test_times_in_natural(self):
        semiring = NaturalSemiring()
        assert semiring.times(4, 3) == 12
        assert semiring.times(0, 3) == 0

    def test_times_rejects_negative(self):
        with pytest.raises(ValueError):
            NaturalSemiring().times(-1, 2)

    def test_times_idempotent_shortcut(self):
        assert BooleanSemiring().times(100, True) is True

    def test_power(self):
        assert NaturalSemiring().power(2, 10) == 1024
        assert NaturalSemiring().power(7, 0) == 1

    def test_sum_product(self):
        semiring = NaturalSemiring()
        assert semiring.sum([1, 2, 3]) == 6
        assert semiring.product([2, 3, 4]) == 24
        assert semiring.sum([]) == 0
        assert semiring.product([]) == 1


class TestSpecificBehaviour:
    def test_tropical_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            TropicalSemiring().mul(-1.0, 2.0)

    def test_viterbi_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ViterbiSemiring().mul(1.5, 0.5)

    def test_why_minimal_witnesses(self):
        x = WhySemiring.variable("x")
        xy = WhySemiring().mul(x, WhySemiring.variable("y"))
        value = WhySemiring().add(x, xy)
        assert WhySemiring.minimal_witnesses(value) == frozenset(
            {frozenset({"x"})}
        )

    def test_trio_drops_exponents_keeps_coefficients(self):
        assert trio_of(Polynomial.parse("s1^2 + 2*s2")) == Polynomial.parse(
            "s1 + 2*s2"
        )

    def test_lineage_flattens_everything(self):
        assert lineage_of(Polynomial.parse("s1*s2 + s3")) == frozenset(
            {"s1", "s2", "s3"}
        )

    def test_lineage_of_zero(self):
        assert lineage_of(Polynomial.zero()) == LineageSemiring.ZERO

"""The aggregate-provenance layer: queries, engines, applications.

The load-bearing guarantee is the specialization property at the
bottom: for ≥ 50 seeded-random database/query/deletion triples,
specializing the semimodule annotation under a total valuation equals
evaluating the plain aggregate on the specialized database.
"""

import random

import pytest

from repro.aggregate import (
    ABSENT,
    AggregateRule,
    AggregateTerm,
    aggregate_after_deletion,
    aggregate_distribution,
    aggregate_table,
    delete_from_aggregate,
    evaluate_aggregate,
    expected_aggregate,
    is_aggregate,
    propagate_deletion_aggregates,
    trusted_aggregate_value,
)
from repro.db.generators import random_database
from repro.db.instance import AnnotatedDatabase
from repro.db.sqlite_backend import SQLiteDatabase
from repro.engine.evaluate import evaluate
from repro.errors import (
    EvaluationError,
    ParseError,
    QueryConstructionError,
)
from repro.query.build import atom
from repro.query.parser import parse_query
from repro.query.printer import query_to_str
from repro.query.terms import Variable
from repro.semiring.polynomial import Polynomial


def sales_db():
    return AnnotatedDatabase.from_dict(
        {
            "Supplier": {("acme", "nyc"): "s1", ("bolt", "nyc"): "s2",
                         ("core", "la"): "s3"},
            "Supplies": {("acme", 5): "s4", ("acme", 3): "s5",
                         ("bolt", 2): "s6", ("core", 9): "s7"},
        }
    )


SALES_QUERY = (
    "sales(city, sum(cost), min(cost), max(cost), count(*)) :- "
    "Supplier(s, city), Supplies(s, cost)"
)


class TestParserAndPrinter:
    def test_parse_aggregate_head(self):
        query = parse_query(SALES_QUERY)
        assert is_aggregate(query)
        assert query.aggregate_ops == ("sum", "min", "max", "count")
        assert query.group_arity == 1
        assert query.arity == 5

    def test_roundtrip(self):
        for text in (
            SALES_QUERY,
            "a(count(*)) :- R(x, y)",
            "a(count(x), x) :- R(x, y), x != y",
            "a(x, sum(y)) :- R(x, y)\na(x, sum(z)) :- S(x, z)",
        ):
            query = parse_query(text)
            assert parse_query(query_to_str(query)) == query

    def test_count_variants(self):
        starred = parse_query("a(count(*)) :- R(x, y)")
        empty = parse_query("a(count()) :- R(x, y)")
        named = parse_query("a(count(x)) :- R(x, y)")
        assert starred == empty
        db = AnnotatedDatabase.from_rows({"R": [("a", "b"), ("a", "c")]})
        assert aggregate_table(starred, db) == aggregate_table(named, db)

    def test_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse_query("a(sum(*)) :- R(x, y)")

    def test_aggregate_argument_must_be_variable(self):
        with pytest.raises(ParseError):
            parse_query("a(sum(3)) :- R(x, y)")

    def test_unknown_operator(self):
        with pytest.raises(ParseError):
            parse_query("a(median(x)) :- R(x, y)")

    def test_mixing_plain_and_aggregate_rules_rejected(self):
        with pytest.raises(ParseError):
            parse_query("a(x, sum(y)) :- R(x, y)\na(x, y) :- R(x, y)")

    def test_signature_mismatch_rejected(self):
        with pytest.raises(QueryConstructionError):
            parse_query("a(x, sum(y)) :- R(x, y)\na(x, min(y)) :- R(x, y)")
        with pytest.raises(QueryConstructionError):
            parse_query(
                "a(x, count(*)) :- R(x, y)\na(x, count(y)) :- R(x, y)"
            )

    def test_aggregated_variable_must_be_safe(self):
        with pytest.raises(QueryConstructionError):
            parse_query("a(x, sum(z)) :- R(x, y)")

    def test_rule_needs_an_aggregate(self):
        with pytest.raises(QueryConstructionError):
            AggregateRule("a", [Variable("x")], [atom("R", "x", "y")])

    def test_aggregate_term_validation(self):
        with pytest.raises(QueryConstructionError):
            AggregateTerm("sum")
        with pytest.raises(QueryConstructionError):
            AggregateTerm("avg", Variable("x"))


class TestEvaluation:
    def test_symbolic_annotations(self):
        results = evaluate_aggregate(parse_query(SALES_QUERY), sales_db())
        nyc = results[("nyc",)]
        assert str(nyc.provenance) == "s1*s4 + s1*s5 + s2*s6"
        total = nyc.aggregates[0]
        assert total.terms() == {
            5: Polynomial.parse("s1*s4"),
            3: Polynomial.parse("s1*s5"),
            2: Polynomial.parse("s2*s6"),
        }
        count = nyc.aggregates[3]
        assert count.terms() == {1: nyc.provenance}

    def test_concrete_table(self):
        table = aggregate_table(parse_query(SALES_QUERY), sales_db())
        assert table == {
            ("nyc",): (10, 2, 5, 3),
            ("la",): (9, 9, 9, 1),
        }

    def test_specialize_total_valuation_matches_table(self):
        query = parse_query(SALES_QUERY)
        db = sales_db()
        results = evaluate_aggregate(query, db)
        table = aggregate_table(query, db)
        for group, result in results.items():
            assert result.specialize(lambda s: 1) == table[group]

    def test_union_rules_merge_groups(self):
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", 1)], "S": [("a", 2), ("b", 5)]}
        )
        query = parse_query(
            "t(x, sum(v)) :- R(x, v)\nt(x, sum(w)) :- S(x, w)"
        )
        assert aggregate_table(query, db) == {("a",): (3,), ("b",): (5,)}

    def test_bag_semantics_multiplicities(self):
        # Two assignments produce the same contribution; both count.
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", "x"), ("a", "y")], "S": [(7,)]}
        )
        query = parse_query("t(g, sum(v)) :- R(g, w), S(v)")
        assert aggregate_table(query, db) == {("a",): (14,)}
        element = evaluate_aggregate(query, db)[("a",)].aggregates[0]
        assert element.specialize(lambda s: 1) == 14

    def test_empty_result(self):
        query = parse_query("t(x, sum(y)) :- R(x, y)")
        assert evaluate_aggregate(query, AnnotatedDatabase()) == {}
        assert aggregate_table(query, AnnotatedDatabase()) == {}

    def test_sum_over_non_numbers_rejected(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "text")]})
        query = parse_query("t(x, sum(y)) :- R(x, y)")
        with pytest.raises(EvaluationError):
            evaluate_aggregate(query, db)
        with pytest.raises(EvaluationError):
            aggregate_table(query, db)

    def test_null_values_rejected_consistently(self):
        # A None contribution equals the MIN/MAX identity; it must raise
        # (as the plain oracle does), not silently vanish from tensors.
        db = AnnotatedDatabase.from_rows({"S": [("nyc", None), ("nyc", 2)]})
        query = parse_query("t(c, min(v)) :- S(c, v)")
        with pytest.raises(EvaluationError):
            evaluate_aggregate(query, db)
        with pytest.raises(EvaluationError):
            aggregate_table(query, db)

    def test_plain_evaluate_rejects_aggregates(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_query(SALES_QUERY), sales_db())

    def test_boolean_style_global_aggregate(self):
        # No grouping attributes: one global group, the empty tuple.
        db = AnnotatedDatabase.from_rows({"R": [("a", 4), ("b", 6)]})
        query = parse_query("t(sum(v), count(*)) :- R(x, v)")
        assert aggregate_table(query, db) == {(): (10, 2)}


class TestApplications:
    def setup_method(self):
        self.results = evaluate_aggregate(
            parse_query(SALES_QUERY), sales_db()
        )
        self.nyc_sum = self.results[("nyc",)].aggregates[0]
        self.nyc_min = self.results[("nyc",)].aggregates[1]

    def test_deletion_specializes_sum(self):
        # Delete supplier acme (s1): only bolt's supply remains.
        assert aggregate_after_deletion(self.nyc_sum, ["s1"]) == 2
        assert aggregate_after_deletion(self.nyc_sum, ["s6"]) == 8
        assert aggregate_after_deletion(self.nyc_sum, []) == 10

    def test_deletion_filters_symbolically(self):
        filtered = delete_from_aggregate(self.nyc_sum, ["s1"])
        assert filtered.terms() == {2: Polynomial.parse("s2*s6")}
        # Symbolic deletion composes.
        assert delete_from_aggregate(filtered, ["s2"]).is_zero()

    def test_deletion_kills_group(self):
        survivors, killed = propagate_deletion_aggregates(
            self.results, ["s3"]
        )
        assert killed == [("la",)]
        assert set(survivors) == {("nyc",)}

    def test_min_under_deletion_switches_witness(self):
        assert aggregate_after_deletion(self.nyc_min, ["s6"]) == 3
        assert aggregate_after_deletion(self.nyc_min, ["s6", "s5"]) == 5
        assert (
            aggregate_after_deletion(self.nyc_min, ["s1", "s2"]) is ABSENT
        )

    def test_trust(self):
        assert trusted_aggregate_value(self.nyc_sum, ["s1", "s4", "s5"]) == 8
        assert trusted_aggregate_value(self.nyc_sum, ["s4", "s5"]) == 0
        assert trusted_aggregate_value(self.nyc_min, ["s2", "s6"]) == 2

    def test_expected_sum_by_linearity(self):
        probabilities = {s: 0.5 for s in self.nyc_sum.support()}
        # E = 5*.25 + 3*.25 + 2*.25
        assert expected_aggregate(self.nyc_sum, probabilities) == \
            pytest.approx(2.5)

    def test_expected_rejects_lattice_monoids(self):
        with pytest.raises(EvaluationError):
            expected_aggregate(self.nyc_min, {})

    def test_expectation_matches_distribution(self):
        result = self.results[("nyc",)]
        probabilities = {s: 0.7 for s in result.support()}
        distribution = aggregate_distribution(
            result, probabilities, aggregate=0
        )
        assert pytest.approx(sum(distribution.values())) == 1.0
        by_enumeration = sum(
            value * p
            for value, p in distribution.items()
            if value is not None
        )
        assert pytest.approx(by_enumeration) == expected_aggregate(
            self.nyc_sum, probabilities
        )

    def test_distribution_of_min(self):
        result = self.results[("nyc",)]
        probabilities = {s: 0.5 for s in result.support()}
        distribution = aggregate_distribution(
            result, probabilities, aggregate=1
        )
        assert set(distribution) <= {2, 3, 5, None}
        assert pytest.approx(sum(distribution.values())) == 1.0

    def test_missing_probability_raises(self):
        with pytest.raises(KeyError):
            expected_aggregate(self.nyc_sum, {"s1": 0.5})
        with pytest.raises(KeyError):
            aggregate_distribution(self.results[("nyc",)], {"s1": 0.5})


class TestCliIntegration:
    def test_aggregate_command(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "prog.dl"
        program.write_text(
            "sales(city, sum(cost)) :- Supplier(s, city), Supplies(s, cost)"
        )
        data = tmp_path / "data.json"
        data.write_text(
            '{"Supplier": [["acme", "nyc"], ["bolt", "nyc"]],'
            ' "Supplies": [["acme", 5], ["bolt", 2]]}'
        )
        import io

        out = io.StringIO()
        assert main(
            [
                "aggregate", "-p", str(program), "-d", str(data),
                "--delete", "s1", "--trust", "s2,s4",
            ],
            out=out,
        ) == 0
        text = out.getvalue()
        assert "sum[" in text
        assert "after deleting {s1}" in text
        assert "sum=2" in text

    def test_incomplete_probabilities_exit_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "prog.dl"
        program.write_text("a(x, sum(y)) :- R(x, y)")
        data = tmp_path / "data.json"
        data.write_text('{"R": [["a", 3]]}')
        probs = tmp_path / "probs.json"
        import io

        probs.write_text('{"s99": 0.5}')  # misses s1
        assert main(
            [
                "aggregate", "-p", str(program), "-d", str(data),
                "--probabilities", str(probs),
            ],
            out=io.StringIO(),
        ) == 1
        assert "error:" in capsys.readouterr().err
        probs.write_text('{"s1": "high"}')  # not a number
        assert main(
            [
                "aggregate", "-p", str(program), "-d", str(data),
                "--probabilities", str(probs),
            ],
            out=io.StringIO(),
        ) == 1

    def test_minimize_rejects_aggregates(self, tmp_path):
        from repro.cli import main

        program = tmp_path / "prog.dl"
        program.write_text("a(x, sum(y)) :- R(x, y)")
        assert main(["minimize", "-p", str(program)]) == 1

    def test_eval_dispatches_to_aggregate(self, tmp_path):
        from repro.cli import main

        program = tmp_path / "prog.dl"
        program.write_text("a(x, count(*)) :- R(x, y)")
        data = tmp_path / "data.json"
        data.write_text('{"R": [["a", "b"]]}')
        import io

        out = io.StringIO()
        assert main(
            ["eval", "-p", str(program), "-d", str(data)], out=out
        ) == 0
        assert "count[" in out.getvalue()


# ----------------------------------------------------------------------
# The specialization property: semimodule ≡ recompute-on-specialized-db
# ----------------------------------------------------------------------
RELATIONS = {"R": 2, "S": 2}
DOMAIN = [0, 1, 2, 3]

QUERY_SHAPES = [
    "agg(x, {op}(y)) :- R(x, y)",
    "agg(x, {op}(v), count(*)) :- R(x, y), S(y, v)",
    "agg({op}(y)) :- R(x, y), S(x, y)",
    "agg(x, {op}(y)) :- R(x, y), x != y",
    "agg(x, {op}(y)) :- R(x, y)\nagg(x, {op}(v)) :- S(x, v)",
]


def specialized_copy(db, deleted):
    copy = AnnotatedDatabase()
    for relation in sorted(db.relations()):
        copy.declare_relation(relation, db.arity(relation))
    for relation, row, annotation in db.all_facts():
        if annotation not in deleted:
            copy.add(relation, row, annotation=annotation)
    return copy


@pytest.mark.parametrize("seed", range(52))
def test_specialization_equals_recompute(seed):
    """Deleting tuples then aggregating == specializing the cached
    semimodule annotation — for every operator and query shape."""
    rng = random.Random(seed * 6151 + 5)
    db = random_database(
        RELATIONS, DOMAIN, n_facts=rng.randrange(4, 10), seed=seed
    )
    op = rng.choice(["sum", "count", "min", "max"])
    query = parse_query(rng.choice(QUERY_SHAPES).format(op=op))
    annotations = sorted(db.annotations())
    deleted = set(rng.sample(annotations, rng.randrange(0, len(annotations))))
    valuation = {s: (0 if s in deleted else 1) for s in annotations}

    annotated = evaluate_aggregate(query, db)
    oracle = aggregate_table(query, specialized_copy(db, deleted))

    surviving = {}
    for group, result in annotated.items():
        values = result.specialize(valuation)
        if values is not None:
            surviving[group] = values
    assert surviving == oracle, "seed {} diverged".format(seed)


@pytest.mark.parametrize("seed", range(12))
def test_sqlite_engine_agrees_on_random_aggregates(seed):
    rng = random.Random(seed * 271 + 17)
    db = random_database(
        RELATIONS, DOMAIN, n_facts=rng.randrange(3, 9), seed=seed + 100
    )
    op = rng.choice(["sum", "count", "min", "max"])
    query = parse_query(rng.choice(QUERY_SHAPES).format(op=op))
    store = SQLiteDatabase.from_annotated(db)
    try:
        assert store.evaluate_aggregate(query) == evaluate_aggregate(
            query, db
        )
    finally:
        store.close()

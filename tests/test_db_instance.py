"""Unit tests for the in-memory annotated database."""

import pytest

from repro.db.instance import AnnotatedDatabase
from repro.errors import (
    NotAbstractlyTaggedError,
    SchemaError,
    UnknownAnnotationError,
)


class TestConstruction:
    def test_add_generates_fresh_annotations(self):
        db = AnnotatedDatabase()
        assert db.add("R", ("a",)) == "s1"
        assert db.add("R", ("b",)) == "s2"

    def test_add_with_explicit_annotation(self):
        db = AnnotatedDatabase()
        assert db.add("R", ("a",), annotation="t9") == "t9"

    def test_explicit_annotation_reserved_from_supply(self):
        db = AnnotatedDatabase()
        db.add("R", ("a",), annotation="s1")
        assert db.add("R", ("b",)) == "s2"

    def test_readd_same_tuple_returns_existing(self):
        db = AnnotatedDatabase()
        first = db.add("R", ("a",))
        assert db.add("R", ("a",)) == first

    def test_readd_with_conflicting_annotation_raises(self):
        db = AnnotatedDatabase()
        db.add("R", ("a",), annotation="s1")
        with pytest.raises(SchemaError):
            db.add("R", ("a",), annotation="s2")

    def test_arity_enforced(self):
        db = AnnotatedDatabase()
        db.add("R", ("a", "b"))
        with pytest.raises(SchemaError):
            db.add("R", ("a",))

    def test_from_dict(self, db_table2):
        assert db_table2.annotation_of("R", ("a", "b")) == "s2"
        assert db_table2.fact_count() == 4

    def test_from_rows(self):
        db = AnnotatedDatabase.from_rows({"R": [("a",), ("b",)]})
        assert db.annotations() == {"s1", "s2"}

    def test_declare_relation(self):
        db = AnnotatedDatabase()
        db.declare_relation("R", 2)
        assert db.rows("R") == []
        with pytest.raises(SchemaError):
            db.declare_relation("R", 3)


class TestInspection:
    def test_rows_of_unknown_relation_is_empty(self):
        assert AnnotatedDatabase().rows("Nope") == []

    def test_arity_of_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            AnnotatedDatabase().arity("Nope")

    def test_all_facts(self, db_table2):
        facts = list(db_table2.all_facts())
        assert ("R", ("a", "a"), "s1") in facts
        assert len(facts) == 4

    def test_active_domain(self, db_table2):
        assert db_table2.active_domain() == {"a", "b"}

    def test_tuple_for_annotation(self, db_table2):
        assert db_table2.tuple_for_annotation("s3") == ("R", ("b", "a"))

    def test_tuple_for_unknown_annotation(self, db_table2):
        with pytest.raises(UnknownAnnotationError):
            db_table2.tuple_for_annotation("zzz")

    def test_len(self, db_table2):
        assert len(db_table2) == 4


class TestTagging:
    def test_fresh_database_is_abstractly_tagged(self, db_table2):
        assert db_table2.is_abstractly_tagged()

    def test_repeated_annotation_detected(self):
        db = AnnotatedDatabase()
        db.add("R", ("a",), annotation="s")
        db.add("R", ("b",), annotation="s")
        assert not db.is_abstractly_tagged()

    def test_ambiguous_annotation_lookup_raises(self):
        db = AnnotatedDatabase()
        db.add("R", ("a",), annotation="s")
        db.add("R", ("b",), annotation="s")
        with pytest.raises(NotAbstractlyTaggedError):
            db.tuple_for_annotation("s")

    def test_retagged_produces_abstract_copy(self):
        db = AnnotatedDatabase()
        db.add("R", ("a",), annotation="s")
        db.add("R", ("b",), annotation="s")
        copy, mapping = db.retagged()
        assert copy.is_abstractly_tagged()
        assert copy.fact_count() == 2
        assert set(mapping.values()) == {"s"}

    def test_retagged_mapping_restores_original(self):
        db = AnnotatedDatabase.from_rows({"R": [("a",), ("b",)]})
        copy, mapping = db.retagged()
        for relation, row, annotation in copy.all_facts():
            assert mapping[annotation] == db.annotation_of(relation, row)

"""Unit tests for the flat-column annotation kernels.

``ColumnarTable`` construction/concat/remap, the counter-merge, and the
lazy decode boundary (``LazyPolynomial``) — the pieces the sharded
engine composes.  The differential suite checks the composed engine;
these tests pin the kernel contracts directly, including the numpy and
pure-python code paths.
"""

import pickle
from array import array

import pytest

from repro.algebra import columnar
from repro.algebra.columnar import (
    ColumnarTable,
    LazyPolynomial,
    decode_polynomials,
    merge_annotations,
)
from repro.algebra.intern import InternTable
from repro.semiring.polynomial import Monomial, Polynomial


def fresh_intern():
    intern = InternTable()
    ids = {
        name: intern.monomial_id(symbols)
        for name, symbols in {
            "s1": ["s1"],
            "s2": ["s2"],
            "s1s2": ["s1", "s2"],
            "s2sq": ["s2", "s2"],
        }.items()
    }
    return intern, ids


class TestColumnarTable:
    def test_from_results_roundtrip(self):
        _, ids = fresh_intern()
        results = {
            ("a",): {ids["s1"]: 2, ids["s1s2"]: 1},
            ("b",): {ids["s2"]: 3},
            ("c",): {},
        }
        table = ColumnarTable.from_results(results)
        assert table.tuple_count() == 3
        assert table.pair_count() == 3
        assert table.to_results() == {
            ("a",): {ids["s1"]: 2, ids["s1s2"]: 1},
            ("b",): {ids["s2"]: 3},
            ("c",): {},
        }

    def test_concat_rebases_offsets_and_keeps_duplicates(self):
        _, ids = fresh_intern()
        t1 = ColumnarTable.from_results({("a",): {ids["s1"]: 1}})
        t2 = ColumnarTable.from_results(
            {("a",): {ids["s1"]: 2}, ("b",): {ids["s2"]: 1}}
        )
        spliced = ColumnarTable.concat([t1, t2])
        assert spliced.heads == [("a",), ("a",), ("b",)]
        assert list(spliced.offsets) == [0, 1, 2, 3]
        # duplicate heads merge by addition when expanded
        assert spliced.to_results()[("a",)] == {ids["s1"]: 3}

    def test_concat_single_is_identity(self):
        _, ids = fresh_intern()
        table = ColumnarTable.from_results({("a",): {ids["s1"]: 1}})
        assert ColumnarTable.concat([table]) is table

    @pytest.mark.parametrize("n", [4, 600])  # below / above the numpy cutoff
    def test_remap_gathers(self, n):
        table = ColumnarTable(
            heads=[(i,) for i in range(n)],
            offsets=array("q", range(n + 1)),
            mids=array("q", range(n)),
            coeffs=array("q", [1] * n),
        )
        mapping = list(range(0, 2 * n, 2))  # local id i -> 2i
        table.remap(mapping)
        assert list(table.mids) == mapping

    def test_merge_annotations_mixed_inputs(self):
        _, ids = fresh_intern()
        col = ColumnarTable.from_results(
            {("a",): {ids["s1"]: 1, ids["s2"]: 1}}
        )
        legacy = {("a",): {ids["s1"]: 2}, ("b",): {ids["s2sq"]: 1}}
        merged = merge_annotations([col, legacy, col])
        assert merged == {
            ("a",): {ids["s1"]: 4, ids["s2"]: 2},
            ("b",): {ids["s2sq"]: 1},
        }


class TestLazyPolynomial:
    def test_is_a_polynomial_and_equal_to_eager(self):
        intern, ids = fresh_intern()
        lazy = LazyPolynomial(intern, {ids["s1"]: 2, ids["s1s2"]: 1})
        eager = Polynomial.parse("2*s1 + s1*s2")
        assert isinstance(lazy, Polynomial)
        assert lazy == eager
        assert eager == lazy
        assert hash(lazy) == hash(eager)
        assert str(lazy) == str(eager)

    def test_materializes_once_and_caches(self):
        intern, ids = fresh_intern()
        lazy = LazyPolynomial(intern, {ids["s2sq"]: 5})
        assert lazy._decoded_terms is None
        first = lazy._terms
        assert first == {Monomial(["s2", "s2"]): 5}
        assert lazy._terms is first

    def test_column_storage_and_algebra(self):
        intern, ids = fresh_intern()
        lazy = LazyPolynomial(
            intern, array("q", [ids["s1"], ids["s2"]]), array("q", [1, 3])
        )
        assert lazy == Polynomial.parse("s1 + 3*s2")
        assert lazy + Polynomial.parse("s1") == Polynomial.parse("2*s1 + 3*s2")
        assert lazy.monomial_count() == 4
        assert not lazy.is_zero()

    def test_pickles_as_eager_polynomial(self):
        intern, ids = fresh_intern()
        lazy = LazyPolynomial(intern, {ids["s1"]: 1})
        clone = pickle.loads(pickle.dumps(lazy))
        assert type(clone) is Polynomial
        assert clone == lazy

    def test_zero_coefficients_filtered(self):
        intern, ids = fresh_intern()
        lazy = LazyPolynomial(intern, {ids["s1"]: 0, ids["s2"]: 1})
        assert lazy == Polynomial.parse("s2")


class TestDecodePolynomials:
    def test_merges_duplicate_heads_across_tables(self):
        intern, ids = fresh_intern()
        t1 = ColumnarTable.from_results(
            {("a",): {ids["s1"]: 2, ids["s1s2"]: 1}, ("b",): {ids["s2"]: 1}}
        )
        t2 = ColumnarTable.from_results({("a",): {ids["s1"]: 1}})
        decoded = decode_polynomials([t1, t2], intern)
        assert decoded == {
            ("a",): Polynomial.parse("3*s1 + s1*s2"),
            ("b",): Polynomial.parse("s2"),
        }

    def test_accepts_legacy_dict_tables(self):
        intern, ids = fresh_intern()
        decoded = decode_polynomials(
            [{("a",): {ids["s1"]: 1}}, {("a",): {ids["s1"]: 1}}], intern
        )
        assert decoded == {("a",): Polynomial.parse("2*s1")}

    def _bulk_tables(self, intern, n=600):
        results = {}
        for i in range(n):
            mid = intern.monomial_id(["x{}".format(i)])
            results[("h{}".format(i),)] = {mid: i + 1}
        return ColumnarTable.from_results(results)

    def test_vectorized_path_matches_fallback(self, monkeypatch):
        intern = InternTable()
        table = self._bulk_tables(intern)
        vectorized = decode_polynomials([table, table], intern)
        monkeypatch.setattr(columnar, "_np", None)
        fallback = decode_polynomials([table, table], intern)
        assert vectorized == fallback
        assert list(vectorized) == list(fallback)  # same head order

    def test_vectorized_path_used_when_available(self):
        if columnar._np is None:
            pytest.skip("numpy not installed")
        intern = InternTable()
        table = self._bulk_tables(intern)
        decoded = decode_polynomials([table], intern)
        sample = next(iter(decoded.values()))
        assert isinstance(sample, LazyPolynomial)
        # merged columns, not per-head dicts, back the lazy values
        assert sample._coeffs is not None

    def test_empty_pair_runs_decode_to_zero(self):
        intern, ids = fresh_intern()
        heads = [("h{}".format(i),) for i in range(300)]
        results = {head: {ids["s1"]: 1} for head in heads}
        results[("empty",)] = {}
        table = ColumnarTable.from_results(results)
        decoded = decode_polynomials([table], intern)
        assert decoded[("empty",)].is_zero()
        assert len(decoded) == 301

"""The EngineConfig facade: validation, shims, and `repro.connect`.

Every public entry point accepts one :class:`repro.EngineConfig`; the
old scattered ``engine=``/``shards=``/``workers=`` keywords must keep
working but warn.  These tests pin the facade contract: shim calls and
config calls produce identical results, and the deprecation warnings
actually fire.
"""

import warnings

import pytest

import repro
from repro import EngineConfig, connect
from repro.config import resolve_engine_config
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate, provenance
from repro.aggregate.evaluate import evaluate_aggregate
from repro.errors import EvaluationError
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program, parse_query
from repro.server.app import ServerState
from repro.session import QuerySession


def small_db():
    return AnnotatedDatabase.from_dict(
        {
            "R": {("a", "b"): "s1", ("b", "c"): "s2", ("a", "c"): "s3"},
            "S": {("c", "d"): "s4", ("b", "d"): "s5"},
        }
    )


QUERY = parse_query("ans(x, z) :- R(x, y), S(y, z)")
AGG_QUERY = parse_query("ans(x, count(*)) :- R(x, y), S(y, z)")


class TestEngineConfigValidation:
    def test_defaults(self):
        config = EngineConfig()
        assert config.engine == "hashjoin"
        assert config.shards is None and config.workers is None
        assert config.mode == "process"
        assert config.columnar is True
        assert config.data_dir is None
        assert config.server_mode == "threaded"

    def test_frozen_and_hashable(self):
        config = EngineConfig(engine="sharded", shards=2)
        with pytest.raises(AttributeError):
            config.shards = 4
        assert config == EngineConfig(engine="sharded", shards=2)
        assert hash(config) == hash(EngineConfig(engine="sharded", shards=2))
        # columnar participates in identity (it changes the result path)
        assert config != config.with_overrides(columnar=False)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": ""},
            {"engine": 7},
            {"mode": "fibers"},
            {"shards": 0},
            {"shards": -1},
            {"shards": True},
            {"shards": 2.5},
            {"workers": 0},
            {"workers": False},
            {"broadcast_threshold": -1},
            {"broadcast_threshold": True},
            {"data_dir": ""},
            {"data_dir": 7},
            {"server_mode": "greenlet"},
            {"server_mode": 7},
            {"server_mode": ""},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(EvaluationError):
            EngineConfig(**kwargs)

    def test_with_overrides(self):
        config = EngineConfig(engine="sharded")
        assert config.with_overrides(shards=3).shards == 3
        assert config.with_overrides(shards=3) is not config
        with pytest.raises(EvaluationError, match="unknown EngineConfig"):
            config.with_overrides(sharding=3)

    def test_with_overrides_revalidates(self):
        with pytest.raises(EvaluationError):
            EngineConfig().with_overrides(shards=-2)


class TestResolveEngineConfig:
    def test_string_is_silent_shorthand(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = resolve_engine_config("backtrack", "caller")
        assert config.engine == "backtrack"

    def test_config_taken_verbatim(self):
        mine = EngineConfig(engine="sharded", shards=7, mode="thread")
        default = EngineConfig(engine="hashjoin", shards=1)
        assert resolve_engine_config(mine, "caller", default=default) is mine

    def test_legacy_kwargs_warn_once_and_overlay(self):
        with pytest.warns(DeprecationWarning, match="caller: the .* deprecated"):
            config = resolve_engine_config(
                None, "caller", engine="sharded", shards=2, workers=None
            )
        assert config.engine == "sharded"
        assert config.shards == 2
        assert config.workers is None

    def test_bad_config_type(self):
        with pytest.raises(EvaluationError, match="EngineConfig or an engine"):
            resolve_engine_config(42, "caller")


class TestShimEquivalence:
    """Old keyword call sites == new config call sites, plus a warning."""

    def test_evaluate(self):
        db = small_db()
        via_config = evaluate(QUERY, db, EngineConfig(engine="backtrack"))
        with pytest.warns(DeprecationWarning, match="evaluate:"):
            via_shim = evaluate(QUERY, db, engine="backtrack")
        assert via_shim == via_config

    def test_evaluate_sharded_kwargs(self):
        db = small_db()
        config = EngineConfig(
            engine="sharded", shards=2, workers=2, mode="thread"
        )
        via_config = evaluate(QUERY, db, config)
        with pytest.warns(DeprecationWarning):
            via_shim = evaluate(
                QUERY, db, engine="sharded", shards=2, workers=2
            )
        assert via_shim == via_config

    def test_provenance(self):
        db = small_db()
        via_config = provenance(
            QUERY, db, ("a", "d"), EngineConfig(engine="hashjoin")
        )
        with pytest.warns(DeprecationWarning, match="provenance:"):
            via_shim = provenance(QUERY, db, ("a", "d"), engine="hashjoin")
        assert via_shim == via_config
        assert str(via_config) == "s1*s5 + s3*s4"

    def test_evaluate_aggregate(self):
        db = small_db()
        via_config = evaluate_aggregate(
            AGG_QUERY, db, EngineConfig(engine="hashjoin")
        )
        with pytest.warns(DeprecationWarning, match="evaluate_aggregate:"):
            via_shim = evaluate_aggregate(AGG_QUERY, db, engine="hashjoin")
        assert via_shim == via_config

    def test_query_session(self):
        db = small_db()
        config = EngineConfig(
            engine="sharded", shards=2, workers=2, mode="thread"
        )
        with QuerySession(db, config) as session:
            via_config = session.evaluate(QUERY)
            assert session.config == config
        with pytest.warns(DeprecationWarning, match="QuerySession:"):
            session = QuerySession(
                db, engine="sharded", shards=2, workers=2, mode="thread"
            )
        with session:
            via_shim = session.evaluate(QUERY)
            assert session.config == config
        assert via_shim == via_config

    def test_view_registry(self):
        program = parse_program("V(x, z) :- R(x, y), S(y, z)")
        via_config = ViewRegistry(
            program, small_db(), config=EngineConfig(engine="hashjoin")
        )
        with pytest.warns(DeprecationWarning, match="ViewRegistry:"):
            via_shim = ViewRegistry(program, small_db(), engine="hashjoin")
        assert via_shim.config == via_config.config
        assert via_shim.view("V") == via_config.view("V")
        via_shim.close()
        via_config.close()

    def test_server_state(self):
        config = EngineConfig(engine="hashjoin")
        with ServerState(small_db(), config=config) as state:
            assert state.config.engine == "hashjoin"
            # the serving tier always runs thread pools (it mutates the
            # db in place on /update)
            assert state.config.mode == "thread"
            via_config = state.run_query("ans(x, z) :- R(x, y), S(y, z)")
        with pytest.warns(DeprecationWarning, match="ServerState:"):
            state = ServerState(small_db(), engine="hashjoin")
        with state:
            via_shim = state.run_query("ans(x, z) :- R(x, y), S(y, z)")
        assert via_shim == via_config


class TestConnect:
    def test_defaults_to_sharded_session(self):
        with connect(small_db()) as session:
            assert isinstance(session, QuerySession)
            assert session.config.engine == "sharded"

    def test_engine_name_shorthand(self):
        with connect(small_db(), "hashjoin") as session:
            assert session.config.engine == "hashjoin"

    def test_overrides_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = connect(small_db(), shards=2, workers=2, mode="thread")
        with session:
            assert session.config.shards == 2
            result = session.evaluate(QUERY)
        assert sorted(str(p) for p in result.values()) == [
            "s1*s5 + s3*s4",
            "s2*s4",
        ]

    def test_config_object(self):
        config = EngineConfig(engine="sharded", shards=2, mode="thread")
        with connect(small_db(), config) as session:
            assert session.config is config

    def test_bad_config_type(self):
        with pytest.raises(EvaluationError, match="connect:"):
            connect(small_db(), 3.14)


class TestPublicSurface:
    def test_facade_names_exported(self):
        assert "EngineConfig" in repro.__all__
        assert "connect" in repro.__all__
        assert repro.EngineConfig is EngineConfig

    def test_one_shot_engine_helpers_not_advertised(self):
        # still importable for back-compat, but the facade is
        # evaluate + EngineConfig
        for name in (
            "evaluate_hashjoin",
            "evaluate_sharded",
            "evaluate_aggregate_sharded",
        ):
            assert name not in repro.__all__
            assert hasattr(repro, name)

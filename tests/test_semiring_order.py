"""Unit tests for the terseness order (Def. 2.15)."""


from repro.paperdata.figures import example_2_16_polynomials
from repro.semiring.order import (
    Ordering,
    compare_polynomials,
    monomial_le,
    polynomial_eq,
    polynomial_le,
    polynomial_lt,
)
from repro.semiring.polynomial import Monomial, Polynomial


class TestMonomialOrder:
    def test_containment(self):
        assert monomial_le(Monomial(["s1"]), Monomial(["s1", "s2"]))

    def test_exponents_counted(self):
        assert monomial_le(Monomial(["s1", "s1"]), Monomial(["s1", "s1", "s1"]))
        assert not monomial_le(Monomial(["s1", "s1"]), Monomial(["s1", "s2"]))

    def test_unit_below_everything(self):
        assert monomial_le(Monomial.one(), Monomial(["s1"]))


class TestPolynomialOrder:
    def test_example_2_16(self):
        """The paper's worked example: p1 < p2."""
        p1, p2 = example_2_16_polynomials()
        assert polynomial_lt(p1, p2)
        assert not polynomial_le(p2, p1)

    def test_reflexive(self):
        p = Polynomial.parse("s1*s2 + 2*s3")
        assert polynomial_le(p, p)

    def test_zero_below_everything(self):
        assert polynomial_le(Polynomial.zero(), Polynomial.parse("s1"))

    def test_monomial_multiplicity_needs_injectivity(self):
        # Two occurrences of s1 cannot both map into a single s1*s2.
        p = Polynomial.parse("2*s1")
        q = Polynomial.parse("s1*s2")
        assert not polynomial_le(p, q)
        assert polynomial_le(p, Polynomial.parse("s1*s2 + s1*s3"))

    def test_matching_requires_maximum_not_greedy(self):
        # Greedy might map s1 -> s1*s2 and strand s1*s3; the maximum
        # matching maps s1 -> s1 and s1*s3 -> s1*s3... constructed so
        # that only one perfect assignment exists.
        p = Polynomial.parse("s1 + s1*s3")
        q = Polynomial.parse("s1*s3 + s1")
        assert polynomial_le(p, q)
        assert polynomial_eq(p, q)

    def test_example_2_14_vs_2_13(self):
        """Qunion yields s2*s3 + s1, Qconj yields s2*s3 + s1*s1."""
        terse = Polynomial.parse("s2*s3 + s1")
        verbose = Polynomial.parse("s2*s3 + s1^2")
        assert polynomial_lt(terse, verbose)

    def test_eq_coincides_with_identity(self):
        p = Polynomial.parse("s1 + s2*s3")
        q = Polynomial.parse("s2*s3 + s1")
        assert polynomial_eq(p, q)
        assert p == q

    def test_transitivity_spotcheck(self):
        p1 = Polynomial.parse("s1")
        p2 = Polynomial.parse("s1*s2")
        p3 = Polynomial.parse("s1*s2*s3 + s4")
        assert polynomial_le(p1, p2)
        assert polynomial_le(p2, p3)
        assert polynomial_le(p1, p3)


class TestCompare:
    def test_equal(self):
        p = Polynomial.parse("s1 + s2")
        assert compare_polynomials(p, p) is Ordering.EQUAL

    def test_less_and_greater(self):
        p = Polynomial.parse("s1")
        q = Polynomial.parse("s1*s2")
        assert compare_polynomials(p, q) is Ordering.LESS
        assert compare_polynomials(q, p) is Ordering.GREATER

    def test_incomparable(self):
        p = Polynomial.parse("s1 + s1")
        q = Polynomial.parse("s1")
        # p has two occurrences, q one: q <= p but p !<= q -> GREATER.
        assert compare_polynomials(p, q) is Ordering.GREATER
        r = Polynomial.parse("s2")
        assert compare_polynomials(Polynomial.parse("s1"), r) is Ordering.INCOMPARABLE

    def test_lemma_3_6_incomparability(self):
        """The two Figure 2 polynomial pairs order in opposite ways."""
        from repro.paperdata.databases import lemma_3_6_expected

        expected = lemma_3_6_expected()
        on_d = compare_polynomials(
            expected["q_no_pmin_on_d"], expected["q_alt_on_d"]
        )
        on_dp = compare_polynomials(
            expected["q_no_pmin_on_dp"], expected["q_alt_on_dp"]
        )
        assert on_d is Ordering.GREATER
        assert on_dp is Ordering.LESS

"""Property-based fuzzing of the parser/printer and query model."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.generators import random_cq, random_ucq
from repro.query.parser import parse_query
from repro.query.printer import query_to_str


class TestPrintParseRoundTrip:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_random_cq_round_trips(self, seed):
        rng = random.Random(seed)
        query = random_cq(
            seed=seed,
            n_atoms=rng.randint(1, 4),
            n_variables=rng.randint(1, 4),
            head_arity=rng.randint(0, 2),
            diseq_probability=rng.choice([0.0, 0.3, 1.0]),
        )
        assert parse_query(query_to_str(query)) == query

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_random_ucq_round_trips(self, seed):
        query = random_ucq(seed=seed, n_adjuncts=3, n_atoms=2, n_variables=3)
        assert parse_query(query_to_str(query)) == query

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_canonical_rename_is_isomorphic(self, seed):
        from repro.hom.homomorphism import is_isomorphic

        query = random_cq(seed=seed, n_atoms=3, n_variables=3,
                          diseq_probability=0.3)
        assert is_isomorphic(query, query.canonical_rename())

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_substitution_to_self_is_identity(self, seed):
        query = random_cq(seed=seed, n_atoms=3, n_variables=3)
        identity = {v: v for v in query.variables()}
        assert query.substitute(identity) == query


class TestGarbageInputsRejected:
    @given(st.text(max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """The parser either parses or raises ParseError / a library
        error — never an unexpected exception type."""
        from repro.errors import ReproError

        try:
            parse_query(text)
        except ReproError:
            pass

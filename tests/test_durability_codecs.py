"""Property-based fuzzing of the durability byte formats (RPSN/RPWL).

Hypothesis drives three codec families — snapshot sections, intern
blobs and WAL record framing — through encode≡decode round trips over
generated inputs, then a corruption corpus checks the failure contract:
a torn or bit-flipped WAL tail is *truncated* (recovery proceeds), a
corrupt snapshot is *rejected* with :class:`SnapshotError` (recovery
falls back to the previous generation — see ``test_durability.py``).
"""

import os
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.instance import AnnotatedDatabase
from repro.durability import (
    WriteAheadLog,
    decode_snapshot,
    encode_record,
    encode_snapshot,
    scan_wal,
)
from repro.durability.snapshot import _decode_intern, _encode_intern
from repro.errors import SnapshotError, WalError

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
# Cell values the sharded payload codec supports (and therefore DBST).
cells = st.one_of(
    st.text(max_size=8),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.none(),
)

relation_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll")),
    min_size=1,
    max_size=6,
)


@st.composite
def databases(draw):
    db = AnnotatedDatabase()
    schema = draw(
        st.dictionaries(
            relation_names,
            st.integers(min_value=1, max_value=3),
            max_size=3,
        )
    )
    for relation, arity in schema.items():
        db.declare_relation(relation, arity)
        rows = draw(
            st.lists(
                st.tuples(*[cells] * arity).filter(
                    # Rows must be hashable and distinct per relation.
                    lambda row: True
                ),
                max_size=5,
                unique_by=repr,
            )
        )
        for row in rows:
            if not db.contains(relation, row):
                db.add(relation, row)
    return db


intern_states = st.tuples(
    st.lists(st.text(max_size=6), max_size=8),
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=63), max_size=4
        ).map(tuple),
        max_size=8,
    ),
)

json_payloads = st.dictionaries(
    st.sampled_from(["insert", "delete", "retag"]),
    st.dictionaries(
        relation_names,
        st.lists(st.lists(cells, max_size=3), max_size=3),
        max_size=2,
    ),
    max_size=3,
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestSnapshotRoundTripProperties:
    @given(databases())
    @settings(max_examples=60, deadline=None)
    def test_database_snapshot_round_trip(self, db):
        content = decode_snapshot(encode_snapshot(db.checkpoint_state()))
        restored = AnnotatedDatabase.from_checkpoint(content.checkpoint)
        assert sorted(restored.all_facts(), key=repr) == sorted(
            db.all_facts(), key=repr
        )
        assert restored.version() == db.version()
        assert sorted(restored.relations()) == sorted(db.relations())
        for relation in db.relations():
            assert restored.arity(relation) == db.arity(relation)

    @given(intern_states)
    @settings(max_examples=60, deadline=None)
    def test_intern_blob_round_trip(self, state):
        symbols, keys = state
        assert _decode_intern(_encode_intern((symbols, keys))) == (
            symbols,
            keys,
        )

    @given(databases(), intern_states)
    @settings(max_examples=30, deadline=None)
    def test_full_snapshot_round_trip(self, db, intern_state):
        data = encode_snapshot(
            db.checkpoint_state(), intern_state=intern_state
        )
        content = decode_snapshot(data)
        assert content.intern_state == intern_state
        assert content.db_version == db.version()
        assert content.registry_state is None


class TestWalRoundTripProperties:
    @given(
        payloads=st.lists(json_payloads, max_size=6),
        base_version=st.integers(0, 2 ** 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_wal_round_trip(self, tmp_path_factory, payloads, base_version):
        path = str(tmp_path_factory.mktemp("wal") / "wal.rpwl")
        with WriteAheadLog.create(path, base_version=base_version) as wal:
            for payload in payloads:
                wal.append(payload)
        base, records, valid, torn = scan_wal(path)
        assert base == base_version
        assert records == payloads
        assert not torn
        assert valid == os.path.getsize(path)

    @given(json_payloads)
    @settings(max_examples=60, deadline=None)
    def test_record_frame_checksum_covers_payload(self, payload):
        frame = encode_record(payload)
        header, body = frame[:8], frame[8:]
        length = int.from_bytes(header[:4], "little")
        crc = int.from_bytes(header[4:], "little")
        assert length == len(body)
        assert crc == zlib.crc32(body) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Corruption corpus
# ----------------------------------------------------------------------
class TestTornWrites:
    PAYLOADS = [
        {"insert": {"R": [{"row": ["a", "b"], "annotation": "s1"}]}},
        {"delete": {"R": [["a", "b"]]}},
    ]

    def build(self, tmp_path) -> str:
        path = str(tmp_path / "wal.rpwl")
        with WriteAheadLog.create(path, base_version=3) as wal:
            for payload in self.PAYLOADS:
                wal.append(payload)
        return path

    @pytest.mark.parametrize("cut", range(1, 11))
    def test_any_tail_cut_truncates_to_a_prefix(self, tmp_path, cut):
        path = self.build(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(16, size - cut))
        base, records, valid, torn = scan_wal(path)
        assert base == 3
        assert records == self.PAYLOADS[: len(records)]
        assert torn or valid == os.path.getsize(path)
        # Reopening truncates and the log accepts fresh appends.
        with WriteAheadLog.open(path) as wal:
            wal.append({"insert": {}})
        assert not scan_wal(path)[3]

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_single_bitflip_past_header_never_misparses(
        self, tmp_path_factory, data
    ):
        """A flipped bit in the record region either leaves a valid
        prefix (checksum catches it) or, in the 1-in-4-billion CRC
        collision we don't model, still yields parseable records."""
        path = self.build(tmp_path_factory.mktemp("wal"))
        size = os.path.getsize(path)
        offset = data.draw(st.integers(16, size - 1))
        bit = data.draw(st.integers(0, 7))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << bit)]))
        base, records, valid, torn = scan_wal(path)
        assert base == 3
        assert len(records) <= len(self.PAYLOADS)
        assert valid <= size

    def test_header_corruption_is_fatal_not_torn(self, tmp_path):
        path = self.build(tmp_path)
        with open(path, "r+b") as handle:
            handle.write(b"XXXX")
        with pytest.raises(WalError):
            scan_wal(path)


class TestSnapshotCorruption:
    def encoded(self) -> bytes:
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", "b"), ("b", "c")], "S": [("c",)]}
        )
        return encode_snapshot(
            db.checkpoint_state(), intern_state=(["s1"], [(0,)])
        )

    @pytest.mark.parametrize("offset", [0, 2, 4, 8, 12, 16, 24, 40, -1, -9])
    def test_bitflips_rejected_with_clear_error(self, offset):
        data = bytearray(self.encoded())
        data[offset] ^= 0x55
        with pytest.raises(SnapshotError) as excinfo:
            decode_snapshot(bytes(data))
        assert str(excinfo.value)  # every rejection carries a message

    @pytest.mark.parametrize("keep", [0, 3, 4, 11, 15, 16, 17, 60])
    def test_truncations_rejected(self, keep):
        data = self.encoded()
        if keep >= len(data):
            pytest.skip("not a truncation")
        with pytest.raises(SnapshotError):
            decode_snapshot(data[:keep])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SnapshotError):
            decode_snapshot(self.encoded() + b"\x00garbage")

    def test_duplicate_section_rejected_or_last_wins_consistently(self):
        """Sections are length-prefixed; appending a stray section must
        not silently extend a valid snapshot."""
        data = self.encoded()
        with pytest.raises(SnapshotError):
            decode_snapshot(data + data[16:40])

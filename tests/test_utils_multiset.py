"""Unit tests for the frozen multiset."""

import pytest

from repro.utils.multiset import FrozenMultiset


class TestConstruction:
    def test_empty(self):
        m = FrozenMultiset()
        assert len(m) == 0
        assert list(m) == []

    def test_sorted_storage(self):
        m = FrozenMultiset(["b", "a", "b"])
        assert m.items == ("a", "b", "b")

    def test_equal_multisets_equal_objects(self):
        assert FrozenMultiset(["a", "b"]) == FrozenMultiset(["b", "a"])

    def test_hash_consistency(self):
        assert hash(FrozenMultiset(["a", "b"])) == hash(FrozenMultiset(["b", "a"]))

    def test_inequality_with_other_type(self):
        assert FrozenMultiset(["a"]) != ["a"]


class TestQueries:
    def test_count(self):
        m = FrozenMultiset(["a", "a", "b"])
        assert m.count("a") == 2
        assert m.count("b") == 1
        assert m.count("z") == 0

    def test_contains(self):
        m = FrozenMultiset(["a"])
        assert "a" in m
        assert "b" not in m

    def test_counts_dict_is_fresh(self):
        m = FrozenMultiset(["a", "a"])
        counts = m.counts
        counts["a"] = 99
        assert m.count("a") == 2

    def test_support(self):
        m = FrozenMultiset(["a", "a", "b", "b", "b"])
        assert m.support() == FrozenMultiset(["a", "b"])

    def test_distinct(self):
        m = FrozenMultiset(["b", "a", "b"])
        assert m.distinct() == ("a", "b")


class TestOrder:
    def test_reflexive(self):
        m = FrozenMultiset(["a", "b"])
        assert m <= m

    def test_inclusion(self):
        small = FrozenMultiset(["a"])
        big = FrozenMultiset(["a", "a", "b"])
        assert small <= big
        assert not big <= small

    def test_multiplicity_matters(self):
        double = FrozenMultiset(["a", "a"])
        single = FrozenMultiset(["a", "b", "c"])
        assert not double <= single

    def test_strict_order(self):
        small = FrozenMultiset(["a"])
        big = FrozenMultiset(["a", "b"])
        assert small < big
        assert not small < small

    def test_incomparable(self):
        m1 = FrozenMultiset(["a"])
        m2 = FrozenMultiset(["b"])
        assert not m1 <= m2
        assert not m2 <= m1

    def test_ge_gt(self):
        big = FrozenMultiset(["a", "b"])
        small = FrozenMultiset(["a"])
        assert big >= small
        assert big > small


class TestAlgebra:
    def test_add_is_multiset_sum(self):
        m = FrozenMultiset(["a"]) + FrozenMultiset(["a", "b"])
        assert m == FrozenMultiset(["a", "a", "b"])

    def test_union_takes_max_multiplicity(self):
        m1 = FrozenMultiset(["a", "a", "b"])
        m2 = FrozenMultiset(["a", "b", "b"])
        assert m1.union(m2) == FrozenMultiset(["a", "a", "b", "b"])

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            FrozenMultiset(["a"]) + ["a"]

    def test_heterogeneous_elements_sortable(self):
        m = FrozenMultiset([1, "a", 2])
        assert len(m) == 3
        assert m.count(1) == 1

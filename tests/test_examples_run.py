"""Smoke tests: every example script runs clean and prints its claims."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

EXPECTED_FRAGMENTS = {
    "aggregate_provenance.py": "SUM under deletion",
    "crash_recovery.py": "Recovered responses byte-identical after SIGKILL: True",
    "engine_comparison.py": "Engines agree polynomial-for-polynomial: True",
    "incremental_maintenance.py": "audit vs full re-evaluation: ok",
    "live_dashboard.py": "Dashboard replay matches the served view byte-for-byte: True",
    "quickstart.py": "p-minimal equivalent found by MinProv",
    "serve_and_query.py": "Server round-trip agrees with in-process evaluation: True",
    "sharded_batch.py": "Sharded batch agrees with the hash-join engine: True",
    "offline_core_provenance.py": "Rewrite-then-evaluate agrees: True",
    "trust_and_maintenance.py": "Minimal trust sets",
    "sqlite_provenance.py": "Compiled SQL",
    "minimization_gallery.py": "Theorem 4.10",
    "trace_a_query.py": "Sharded trace covers the fan-out stages: True",
    "view_composition.py": "blocked at disequality",
}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    fragment = EXPECTED_FRAGMENTS.get(path.name)
    if fragment is not None:
        assert fragment in completed.stdout


def test_all_examples_have_expectations():
    names = {path.name for path in EXAMPLES}
    assert set(EXPECTED_FRAGMENTS) <= names

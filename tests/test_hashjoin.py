"""Unit tests for the hash-join engine, the intern table and plan cache."""

import pytest

from repro.algebra.intern import InternTable
from repro.db.generators import (
    chain_query,
    cycle_query,
    random_database,
    star_query,
)
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate, evaluate_backtracking
from repro.engine.hashjoin import (
    clear_plan_cache,
    compile_cq,
    default_plan_cache,
    evaluate_aggregate_hashjoin,
    evaluate_hashjoin,
    plan_for,
)
from repro.engine.plan_cache import PlanCache, cardinality_band
from repro.errors import EvaluationError
from repro.incremental.delta import Delta
from repro.incremental.maintain import check_consistency
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program, parse_query
from repro.semiring.polynomial import Polynomial


# ----------------------------------------------------------------------
# Intern table
# ----------------------------------------------------------------------
class TestInternTable:
    def test_symbol_ids_are_stable(self):
        table = InternTable()
        assert table.symbol_id("s1") == table.symbol_id("s1")
        assert table.symbol(table.symbol_id("s1")) == "s1"

    def test_times_symbol_is_memoized_and_commutative(self):
        table = InternTable()
        a, b = table.symbol_id("a"), table.symbol_id("b")
        ab = table.times_symbol(table.times_symbol(table.one, a), b)
        ba = table.times_symbol(table.times_symbol(table.one, b), a)
        assert ab == ba  # interned monomials are canonical (sorted)
        assert str(table.monomial(ab)) == "a*b"

    def test_decodes_exponents(self):
        table = InternTable()
        s = table.symbol_id("s")
        m = table.one
        for _ in range(3):
            m = table.times_symbol(m, s)
        assert str(table.monomial(m)) == "s^3"
        assert table.polynomial({m: 2}) == Polynomial.parse("2*s^3")

    def test_clear_resets_ids(self):
        table = InternTable()
        table.symbol_id("z")
        table.clear()
        assert table.sizes() == {"symbols": 0, "monomials": 1, "products": 0}
        assert table.polynomial({table.one: 1}) == Polynomial.one()

    def test_shared_intern_swaps_when_oversized(self, monkeypatch):
        import repro.algebra.intern as intern_module

        first = intern_module.shared_intern()
        assert intern_module.shared_intern() is first  # stable under limit
        monkeypatch.setattr(intern_module, "MAX_SHARED_ENTRIES", 0)
        first.symbol_id("overflow")  # entry_count now > 0
        replacement = intern_module.shared_intern()
        assert replacement is not first
        assert intern_module.GLOBAL_INTERN is replacement
        # The old table still works for an in-flight evaluation.
        assert first.symbol(first.symbol_id("overflow")) == "overflow"

    def test_concurrent_interning_is_consistent(self):
        import threading

        table = InternTable()
        symbols = ["s{}".format(i) for i in range(200)]
        errors = []

        def worker():
            try:
                for symbol in symbols:
                    monomial = table.times_symbol(
                        table.one, table.symbol_id(symbol)
                    )
                    assert str(table.monomial(monomial)) == symbol
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # One id per symbol: no duplicate assignment slipped through.
        assert table.sizes()["symbols"] == len(symbols)
        for symbol in symbols:
            assert table.symbol(table.symbol_id(symbol)) == symbol


# ----------------------------------------------------------------------
# Engine correctness on targeted shapes
# ----------------------------------------------------------------------
class TestHashJoinEngine:
    def _agree(self, query, db):
        assert evaluate_hashjoin(query, db) == evaluate_backtracking(query, db)

    @pytest.mark.parametrize(
        "query",
        [chain_query(3), star_query(3), cycle_query(3)],
        ids=["chain", "star", "cycle"],
    )
    def test_join_shapes(self, query):
        db = random_database({"R": 2}, ["a", "b", "c", "d"], 9, seed=7)
        self._agree(query, db)

    def test_constants_everywhere(self):
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", "b"), ("a", "a"), ("b", "a")]}
        )
        self._agree(parse_query("ans('k', x) :- R('a', x), x != 'b'"), db)

    def test_repeated_variables(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "a"), ("a", "b")]})
        self._agree(parse_query("ans(x, x) :- R(x, x)"), db)

    def test_cartesian_product(self):
        db = AnnotatedDatabase.from_rows({"R": [("a",)], "S": [("b",), ("c",)]})
        self._agree(parse_query("ans(x, y) :- R(x), S(y)"), db)

    def test_unknown_relation_is_empty(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b")]})
        assert evaluate_hashjoin(parse_query("ans(x) :- Missing(x)"), db) == {}

    def test_arity_mismatch_is_empty(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b")]})
        assert evaluate_hashjoin(parse_query("ans(x) :- R(x)"), db) == {}

    def test_diseq_between_late_bound_variables(self):
        # x and z bind at different steps; the check must wait for both.
        db = random_database({"R": 2}, ["a", "b", "c"], 7, seed=3)
        self._agree(parse_query("ans(x, z) :- R(x, y), R(y, z), x != z"), db)

    def test_coefficients_from_projection(self):
        # Projecting y away merges derivations: coefficient 2 appears.
        db = AnnotatedDatabase.from_dict(
            {"R": {("a", "b"): "s1", ("a", "c"): "s2"}, "S": {("a",): "s3"}}
        )
        result = evaluate_hashjoin(parse_query("ans(x) :- R(x, y), S(x)"), db)
        assert result[("a",)] == Polynomial.parse("s1*s3 + s2*s3")

    def test_rejects_aggregate_queries(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", 1)]})
        with pytest.raises(EvaluationError):
            evaluate_hashjoin(parse_query("ans(sum(v)) :- R(x, v)"), db)

    def test_unknown_engine_name_rejected(self):
        db = AnnotatedDatabase.from_rows({"R": [("a", "b")]})
        with pytest.raises(EvaluationError):
            evaluate(parse_query("ans(x) :- R(x, y)"), db, engine="quantum")


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_hit_on_repeated_evaluation(self):
        cache = PlanCache()
        db = random_database({"R": 2}, ["a", "b", "c"], 6, seed=1)
        query = chain_query(3)
        evaluate_hashjoin(query, db, cache=cache)
        misses_after_first = cache.stats()["misses"]
        evaluate_hashjoin(query, db, cache=cache)
        stats = cache.stats()
        assert stats["misses"] == misses_after_first  # no recompile
        assert stats["hits"] >= 1

    def test_same_band_reuses_plan(self):
        cache = PlanCache()
        db = random_database({"R": 2}, ["a", "b", "c", "d"], 9, seed=2)
        query = chain_query(2)
        plan_a = plan_for(query, db, cache=cache)
        db.add("R", ("zz", "zz"))  # 9 -> 10 stays inside band 4 (8..15)
        plan_b = plan_for(query, db, cache=cache)
        assert plan_a is plan_b
        assert cache.stats()["hits"] == 1

    def test_band_crossing_invalidates(self):
        cache = PlanCache()
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", str(i)) for i in range(7)]}
        )
        query = chain_query(2)
        plan_small = plan_for(query, db, cache=cache)
        db.add("R", ("a", "x7"))  # 7 -> 8 crosses into band 4
        plan_large = plan_for(query, db, cache=cache)
        assert cardinality_band(7) != cardinality_band(8)
        assert plan_small is not plan_large
        assert cache.stats()["misses"] == 2

    def test_profile_includes_arity(self):
        cache = PlanCache()
        query = parse_query("ans(x) :- R(x, y)")
        binary = AnnotatedDatabase.from_rows({"R": [("a", "b")]})
        unary = AnnotatedDatabase.from_rows({"R": [("a",)]})
        assert plan_for(query, binary, cache=cache).satisfiable
        assert not plan_for(query, unary, cache=cache).satisfiable

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        db = random_database({"R": 2, "S": 1}, ["a", "b"], 4, seed=0)
        queries = [
            parse_query("ans(x) :- R(x, y)"),
            parse_query("ans(x) :- S(x)"),
            parse_query("ans(x) :- R(x, x)"),
        ]
        for query in queries:
            plan_for(query, db, cache=cache)
        assert len(cache) == 2
        plan_for(queries[0], db, cache=cache)  # evicted: recompiled
        assert cache.stats()["misses"] == 4

    def test_compile_cq_reorders_small_relation_first(self):
        db = AnnotatedDatabase.from_rows(
            {"Big": [("a", str(i)) for i in range(20)], "Small": [("a",)]}
        )
        plan = compile_cq(parse_query("ans(x) :- Big(x, y), Small(x)"), db)
        assert plan.steps[0].relation == "Small"

    def test_default_cache_round_trip(self):
        clear_plan_cache()
        db = random_database({"R": 2}, ["a", "b"], 4, seed=5)
        query = parse_query("ans(x) :- R(x, y)")
        evaluate_hashjoin(query, db)
        evaluate_hashjoin(query, db)
        stats = default_plan_cache().stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1


# ----------------------------------------------------------------------
# Plan reuse across the incremental refresh loop
# ----------------------------------------------------------------------
class TestIncrementalPlanReuse:
    def test_refresh_loop_reuses_cached_plans(self):
        clear_plan_cache()
        db = random_database({"R": 2, "S": 2}, list(range(6)), 24, seed=9)
        program = parse_program(
            "V(x, z) :- R(x, y), S(y, z)\n"
            "agg(x, count(*)) :- R(x, y)"
        )
        registry = ViewRegistry(program, db)
        baseline = default_plan_cache().stats()
        # Small deltas stay inside the cardinality bands, so every
        # audit's full recompute reuses the plans compiled at
        # materialization time.
        for i in range(3):
            registry.apply(Delta(inserts=[("R", ("p{}".format(i), 0))]))
            assert check_consistency(registry).consistent
        stats = default_plan_cache().stats()
        assert stats["misses"] == baseline["misses"]
        assert stats["hits"] > baseline["hits"]


# ----------------------------------------------------------------------
# Aggregate path details
# ----------------------------------------------------------------------
class TestHashJoinAggregates:
    def test_accumulator_receives_merged_contributions(self):
        # Two facts share the value 5: the join result merges nothing
        # (distinct tuples) but the tensor groups them by value.
        db = AnnotatedDatabase.from_rows(
            {"S": [("nyc", 5), ("sf", 5), ("nyc", 2)], "C": [("nyc",), ("sf",)]}
        )
        query = parse_query("sales(sum(cost)) :- S(city, cost), C(city)")
        [result] = evaluate_aggregate_hashjoin(query, db).values()
        assert str(result.provenance) == "s1*s4 + s2*s5 + s3*s4"
        [element] = result.aggregates
        assert element.specialize(lambda _s: 1) == 12
        assert element.terms()[5] == Polynomial.parse("s1*s4 + s2*s5")

    def test_empty_database_has_no_groups(self):
        db = AnnotatedDatabase()
        db.declare_relation("S", 2)
        query = parse_query("sales(city, sum(cost)) :- S(city, cost)")
        assert evaluate_aggregate_hashjoin(query, db) == {}

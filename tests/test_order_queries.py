"""Unit tests for the provenance order on queries (Def. 2.17)."""


from repro.order.query_order import (
    bounded_le_p,
    compare_on_database,
    le_on_database,
    provenance_equivalent,
    surjective_hom_witnesses_le,
)
from repro.minimize.canonical import canonical_rewriting
from repro.minimize.minprov import min_prov
from repro.query.parser import parse_query
from repro.semiring.order import Ordering


class TestPerDatabase:
    def test_example_2_18(self, fig1, db_table2):
        """Qunion <_P Qconj on the Table 2 database."""
        assert le_on_database(fig1.q_union, fig1.q_conj, db_table2)
        assert not le_on_database(fig1.q_conj, fig1.q_union, db_table2)
        assert (
            compare_on_database(fig1.q_union, fig1.q_conj, db_table2)
            is Ordering.LESS
        )

    def test_lemma_3_6_opposite_orders(self, fig2, db_table4, db_table5):
        assert (
            compare_on_database(fig2.q_no_pmin, fig2.q_alt, db_table4)
            is Ordering.GREATER
        )
        assert (
            compare_on_database(fig2.q_no_pmin, fig2.q_alt, db_table5)
            is Ordering.LESS
        )

    def test_equal_on_database(self, fig1, db_table2):
        assert (
            compare_on_database(fig1.q_union, fig1.q_union, db_table2)
            is Ordering.EQUAL
        )


class TestBoundedSearch:
    def test_confirms_theorem_3_11(self, fig1):
        """No small database violates Qunion <=_P Qconj."""
        verdict = bounded_le_p(fig1.q_union, fig1.q_conj, domain=("a", "b"), max_facts=3)
        assert verdict.holds
        assert verdict.databases_checked > 1

    def test_refutes_reverse_direction(self, fig1):
        verdict = bounded_le_p(fig1.q_conj, fig1.q_union, domain=("a", "b"), max_facts=3)
        assert not verdict.holds
        assert verdict.counterexample is not None
        # The counterexample is definitive: re-check it directly.
        assert not le_on_database(
            fig1.q_conj, fig1.q_union, verdict.counterexample
        )

    def test_figure2_incomparability(self, fig2, db_table5):
        # Forward (QnoPmin <=_P Qalt) is refuted by exhaustive search —
        # the found counterexample is exactly the Table 4 database shape.
        forward = bounded_le_p(
            fig2.q_no_pmin, fig2.q_alt, domain=("a", "b", "c"), max_facts=4
        )
        assert not forward.holds
        counter_facts = {
            (rel, row) for rel, row, _ in forward.counterexample.all_facts()
        }
        assert counter_facts == {
            ("R", ("a", "a")),
            ("R", ("a", "b")),
            ("R", ("b", "a")),
            ("S", ("a",)),
        }
        # Backward (Qalt <=_P QnoPmin) needs the 5-fact D' witness, too
        # large for exhaustive search in a unit test; refute it directly
        # on the paper's Table 5 database.
        assert not le_on_database(fig2.q_alt, fig2.q_no_pmin, db_table5)


class TestSufficientCondition:
    def test_theorem_3_3_on_figure1(self, fig1):
        """Surjective hom Qconj -> Q2 witnesses Q2 <=_P Qconj... applied
        adjunct-wise in the Thm. 3.11 proof."""
        assert surjective_hom_witnesses_le(fig1.q2, fig1.q_conj)

    def test_example_3_4_no_witness(self):
        q = parse_query("ans() :- R(x), R(y)")
        q_prime = parse_query("ans() :- R(x)")
        # No surjective hom q -> q_prime... wait: mapping both atoms of q
        # onto the single atom of q_prime IS surjective, witnessing
        # q_prime <=_P q; the reverse has no surjective witness.
        assert surjective_hom_witnesses_le(q_prime, q)
        assert not surjective_hom_witnesses_le(q, q_prime)


class TestProvenanceEquivalence:
    def test_canonical_rewriting_equivalent(self, qhat):
        """Thm. 4.4 decided symbolically."""
        assert provenance_equivalent(qhat, canonical_rewriting(qhat))

    def test_qconj_not_equivalent_to_qunion(self, fig1):
        assert not provenance_equivalent(fig1.q_conj, fig1.q_union)

    def test_minprov_not_equivalent_when_reduction_happens(self, qhat):
        assert not provenance_equivalent(qhat, min_prov(qhat))

    def test_minprov_equivalent_for_p_minimal_input(self, fig1):
        assert provenance_equivalent(fig1.q_union, min_prov(fig1.q_union))

    def test_renamed_query_equivalent(self):
        q1 = parse_query("ans(x) :- R(x, y), x != y")
        q2 = parse_query("ans(u) :- R(u, w), u != w")
        assert provenance_equivalent(q1, q2)

    def test_agrees_with_bounded_search(self, fig1):
        """Differential: symbolic ≡_P vs exhaustive small databases."""
        pairs = [
            (fig1.q_union, fig1.q_conj, False),
            (fig1.q_union, fig1.q_union, True),
        ]
        for q1, q2, expected in pairs:
            assert provenance_equivalent(q1, q2) == expected
            forward = bounded_le_p(q1, q2, domain=("a", "b"), max_facts=3)
            backward = bounded_le_p(q2, q1, domain=("a", "b"), max_facts=3)
            assert (forward.holds and backward.holds) == expected

"""Unit tests for the synthetic workload generators."""

import pytest

from repro.db.generators import (
    all_databases,
    chain_query,
    clique_query,
    cycle_query,
    random_cq,
    random_database,
    random_ucq,
    star_query,
    uniform_binary_database,
)


class TestAllDatabases:
    def test_counts_subsets(self):
        # One unary relation over a 2-value domain: 2 facts, 4 subsets.
        dbs = list(all_databases({"R": 1}, ["a", "b"]))
        assert len(dbs) == 4

    def test_max_facts_cap(self):
        dbs = list(all_databases({"R": 1}, ["a", "b", "c"], max_facts=1))
        assert len(dbs) == 4  # empty + three singletons

    def test_exclude_empty(self):
        dbs = list(all_databases({"R": 1}, ["a"], include_empty=False))
        assert len(dbs) == 1

    def test_all_abstractly_tagged(self):
        for db in all_databases({"R": 2}, ["a"], max_facts=1):
            assert db.is_abstractly_tagged()

    def test_deterministic_annotations(self):
        first = [sorted(db.annotations()) for db in all_databases({"R": 1}, ["a", "b"])]
        second = [sorted(db.annotations()) for db in all_databases({"R": 1}, ["a", "b"])]
        assert first == second


class TestRandomGenerators:
    def test_random_database_deterministic_in_seed(self):
        db1 = random_database({"R": 2}, ["a", "b", "c"], 4, seed=5)
        db2 = random_database({"R": 2}, ["a", "b", "c"], 4, seed=5)
        assert sorted(db1.all_facts()) == sorted(db2.all_facts())

    def test_random_database_fact_count(self):
        db = random_database({"R": 2}, ["a", "b"], 3, seed=1)
        assert db.fact_count() == 3

    def test_oversized_request_clamped(self):
        db = random_database({"R": 1}, ["a"], 100, seed=0)
        assert db.fact_count() == 1

    def test_uniform_binary_database(self):
        db = uniform_binary_database(4, density=1.0, seed=0)
        assert db.fact_count() == 16

    def test_random_cq_deterministic(self):
        assert random_cq(seed=3) == random_cq(seed=3)

    def test_random_cq_with_diseqs(self):
        query = random_cq(seed=1, n_atoms=4, n_variables=4, diseq_probability=1.0)
        variables = sorted(query.variables())
        expected_pairs = len(variables) * (len(variables) - 1) // 2
        assert len(query.disequalities) == expected_pairs

    def test_random_ucq_consistent_heads(self):
        union = random_ucq(seed=2, n_adjuncts=3)
        arities = {adjunct.arity for adjunct in union.adjuncts}
        assert len(arities) == 1


class TestJoinShapes:
    def test_chain(self):
        query = chain_query(3)
        assert query.size() == 3
        assert query.arity == 2

    def test_star(self):
        query = star_query(4)
        assert query.size() == 4
        assert len(query.variables()) == 5

    def test_cycle_is_boolean(self):
        assert cycle_query(3).is_boolean()

    def test_clique_atom_count(self):
        assert clique_query(3).size() == 6

    @pytest.mark.parametrize("builder", [chain_query, star_query, cycle_query])
    def test_shapes_reject_zero(self, builder):
        with pytest.raises(ValueError):
            builder(0)

    def test_clique_rejects_one(self):
        with pytest.raises(ValueError):
            clique_query(1)

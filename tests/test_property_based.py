"""Property-based tests (hypothesis) on the core data structures.

Strategies generate random multisets, monomials, polynomials and small
queries/databases; properties are the invariants listed in DESIGN.md.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.generators import random_cq, random_database
from repro.direct.core_polynomial import core_monomials
from repro.engine.evaluate import evaluate
from repro.minimize.canonical import canonical_rewriting
from repro.semiring.boolean import BooleanSemiring
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.order import polynomial_le, polynomial_lt
from repro.semiring.polynomial import Monomial, Polynomial
from repro.semiring.tropical import TropicalSemiring
from repro.utils.multiset import FrozenMultiset

SYMBOLS = ["s1", "s2", "s3", "s4"]

monomials = st.lists(st.sampled_from(SYMBOLS), max_size=4).map(Monomial)
polynomials = st.lists(monomials, max_size=4).map(Polynomial.from_monomials)
multisets = st.lists(st.sampled_from("abcd"), max_size=6).map(FrozenMultiset)


class TestMultisetOrderIsPartialOrder:
    @given(multisets)
    def test_reflexive(self, m):
        assert m <= m

    @given(multisets, multisets)
    def test_antisymmetric(self, m1, m2):
        if m1 <= m2 and m2 <= m1:
            assert m1 == m2

    @given(multisets, multisets, multisets)
    def test_transitive(self, m1, m2, m3):
        if m1 <= m2 and m2 <= m3:
            assert m1 <= m3

    @given(multisets, multisets)
    def test_sum_is_upper_bound(self, m1, m2):
        assert m1 <= m1 + m2
        assert m2 <= m1 + m2


class TestPolynomialOrderProperties:
    @given(polynomials)
    def test_reflexive(self, p):
        assert polynomial_le(p, p)

    @given(polynomials, polynomials)
    def test_addition_grows(self, p, q):
        assert polynomial_le(p, p + q)

    @given(polynomials, polynomials)
    def test_antisymmetric_up_to_identity(self, p, q):
        """Def. 2.15 equality coincides with polynomial identity."""
        if polynomial_le(p, q) and polynomial_le(q, p):
            assert p == q

    @given(polynomials, polynomials, polynomials)
    @settings(max_examples=60)
    def test_transitive(self, p, q, r):
        if polynomial_le(p, q) and polynomial_le(q, r):
            assert polynomial_le(p, r)

    @given(polynomials)
    def test_zero_is_bottom(self, p):
        assert polynomial_le(Polynomial.zero(), p)

    @given(polynomials, polynomials)
    def test_lt_is_strict(self, p, q):
        if polynomial_lt(p, q):
            assert not polynomial_lt(q, p)


class TestCoreTransformProperties:
    @given(polynomials)
    def test_core_is_dominated_by_original(self, p):
        """Cor. 5.6 only ever shrinks under the terseness order."""
        core = Polynomial.from_monomials(core_monomials(p))
        assert polynomial_le(core, p)

    @given(polynomials)
    def test_core_monomials_are_linear_and_minimal(self, p):
        core = core_monomials(p)
        for m in core:
            assert m.is_linear()
        for m in core:
            assert not any(other < m for other in core)

    @given(polynomials)
    def test_core_idempotent(self, p):
        once = Polynomial.from_monomials(core_monomials(p))
        twice = Polynomial.from_monomials(core_monomials(once))
        assert set(core_monomials(p)) == set(core_monomials(twice))

    @given(polynomials, st.lists(st.sampled_from(SYMBOLS), max_size=4))
    def test_boolean_evaluation_invariant(self, p, trusted_list):
        """Absorptive semirings cannot distinguish core from full."""
        trusted = set(trusted_list)
        core = Polynomial.from_monomials(core_monomials(p))
        boolean = BooleanSemiring()
        full_value = evaluate_polynomial(p, boolean, lambda s: s in trusted)
        core_value = evaluate_polynomial(core, boolean, lambda s: s in trusted)
        assert full_value == core_value

    @given(polynomials)
    def test_tropical_evaluation_invariant_on_supports(self, p):
        """With 0/1 costs, min-cost over support monomials is preserved
        by dropping containing monomials (absorption)."""
        tropical = TropicalSemiring()
        costs = {s: float(i) for i, s in enumerate(SYMBOLS)}
        support_poly = Polynomial.from_monomials(
            m.support() for m in p.expanded()
        )
        core = Polynomial.from_monomials(core_monomials(p))
        full_value = evaluate_polynomial(support_poly, tropical, costs)
        core_value = evaluate_polynomial(core, tropical, costs)
        assert full_value == core_value


class TestSemanticInvariants:
    """Random query/database invariants (seeded via hypothesis ints)."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_canonical_rewriting_preserves_provenance(self, seed):
        rng = random.Random(seed)
        query = random_cq(
            seed=seed,
            n_atoms=rng.randint(1, 2),
            n_variables=rng.randint(1, 3),
            diseq_probability=rng.choice([0.0, 0.4]),
        )
        db = random_database({"R": 2, "S": 1}, ["a", "b"], rng.randint(0, 4), seed=seed)
        assert evaluate(query, db) == evaluate(canonical_rewriting(query), db)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_engines_agree(self, seed):
        from repro.db.sqlite_backend import SQLiteDatabase

        rng = random.Random(seed)
        query = random_cq(
            seed=seed,
            n_atoms=rng.randint(1, 3),
            n_variables=rng.randint(1, 3),
            diseq_probability=rng.choice([0.0, 0.3]),
        )
        db = random_database(
            {"R": 2, "S": 1}, ["a", "b", "c"], rng.randint(0, 6), seed=seed
        )
        store = SQLiteDatabase.from_annotated(db)
        try:
            assert evaluate(query, db) == store.evaluate(query)
        finally:
            store.close()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_minprov_reduces_provenance(self, seed):
        from repro.minimize.minprov import min_prov
        from repro.order.query_order import le_on_database

        rng = random.Random(seed)
        query = random_cq(
            seed=seed,
            n_atoms=rng.randint(1, 2),
            n_variables=2,
            diseq_probability=rng.choice([0.0, 0.4]),
        )
        minimal = min_prov(query)
        db = random_database({"R": 2, "S": 1}, ["a", "b"], rng.randint(0, 4), seed=seed)
        assert le_on_database(minimal, query, db)

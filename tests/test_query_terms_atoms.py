"""Unit tests for terms, atoms and disequalities."""

import pytest

from repro.errors import QueryConstructionError, UnsatisfiableQueryError
from repro.query.atoms import Atom, Disequality
from repro.query.terms import (
    Constant,
    Variable,
    is_constant,
    is_variable,
    term_sort_key,
)


class TestTerms:
    def test_variable_equality(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_variable_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_constant_equality(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")

    def test_variable_never_equals_constant(self):
        assert Variable("a") != Constant("a")

    def test_predicates(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant("x"))
        assert is_constant(Constant(1))

    def test_str_forms(self):
        assert str(Variable("x")) == "x"
        assert str(Constant("a")) == "'a'"
        assert str(Constant(3)) == "3"

    def test_sort_key_orders_variables_before_constants(self):
        assert term_sort_key(Variable("z")) < term_sort_key(Constant("a"))

    def test_constant_rejects_unhashable(self):
        with pytest.raises(TypeError):
            Constant([1, 2])


class TestAtom:
    def test_construction_and_str(self):
        atom = Atom("R", (Variable("x"), Constant("a")))
        assert atom.arity == 2
        assert str(atom) == "R(x, 'a')"

    def test_variables_and_constants(self):
        atom = Atom("R", (Variable("x"), Constant("a"), Variable("x")))
        assert list(atom.variables()) == [Variable("x"), Variable("x")]
        assert list(atom.constants()) == [Constant("a")]

    def test_substitute(self):
        atom = Atom("R", (Variable("x"), Variable("y")))
        result = atom.substitute({Variable("x"): Constant("a")})
        assert result == Atom("R", (Constant("a"), Variable("y")))

    def test_substitute_leaves_constants(self):
        atom = Atom("R", (Constant("a"),))
        assert atom.substitute({Variable("a"): Variable("z")}) == atom

    def test_rejects_bad_relation_name(self):
        with pytest.raises(QueryConstructionError):
            Atom("", (Variable("x"),))

    def test_rejects_non_term_args(self):
        with pytest.raises(QueryConstructionError):
            Atom("R", ("x",))

    def test_nullary_atom(self):
        assert Atom("T", ()).arity == 0


class TestDisequality:
    def test_symmetric_equality(self):
        x, y = Variable("x"), Variable("y")
        assert Disequality(x, y) == Disequality(y, x)
        assert hash(Disequality(x, y)) == hash(Disequality(y, x))

    def test_variable_constant(self):
        dis = Disequality(Constant("c"), Variable("x"))
        assert dis.left == Variable("x")  # variables sort first
        assert dis.right == Constant("c")

    def test_rejects_two_constants(self):
        with pytest.raises(QueryConstructionError):
            Disequality(Constant("a"), Constant("b"))

    def test_rejects_identical_terms(self):
        with pytest.raises(UnsatisfiableQueryError):
            Disequality(Variable("x"), Variable("x"))

    def test_substitute(self):
        dis = Disequality(Variable("x"), Variable("y"))
        result = dis.substitute({Variable("x"): Variable("z")})
        assert result == Disequality(Variable("z"), Variable("y"))

    def test_substitute_collapse_raises(self):
        dis = Disequality(Variable("x"), Variable("y"))
        with pytest.raises(UnsatisfiableQueryError):
            dis.substitute({Variable("x"): Variable("y")})

    def test_is_satisfied_by(self):
        dis = Disequality(Variable("x"), Constant("a"))
        values = {Variable("x"): "b", Constant("a"): "a"}
        assert dis.is_satisfied_by(lambda t: values[t])

    def test_variables(self):
        dis = Disequality(Variable("x"), Constant("a"))
        assert dis.variables() == (Variable("x"),)

"""Unit and semantic tests for MinProv (Algorithm 1)."""

import pytest

from repro.db.generators import all_databases, random_cq, random_database
from repro.engine.evaluate import evaluate
from repro.hom.containment import is_equivalent
from repro.hom.homomorphism import is_isomorphic
from repro.minimize.minprov import is_p_minimal, min_prov, min_prov_trace
from repro.order.query_order import le_on_database
from repro.paperdata.figures import figure3_expected_steps
from repro.query.parser import parse_query
from repro.semiring.polynomial import Polynomial


def assert_same_adjuncts_up_to_iso(union1, union2):
    adjuncts1 = list(union1.adjuncts)
    adjuncts2 = list(union2.adjuncts)
    assert len(adjuncts1) == len(adjuncts2)
    remaining = list(adjuncts2)
    for adjunct in adjuncts1:
        match = next(
            (i for i, c in enumerate(remaining) if is_isomorphic(adjunct, c)), None
        )
        assert match is not None, "no isomorphic partner for {}".format(adjunct)
        del remaining[match]


class TestFigure3:
    def test_step_by_step_matches_paper(self, qhat):
        """Example 4.7: Q̂I, Q̂II, Q̂III exactly as in Figure 3."""
        trace = min_prov_trace(qhat)
        expected = figure3_expected_steps()
        assert_same_adjuncts_up_to_iso(trace.step1, expected["QI"])
        assert_same_adjuncts_up_to_iso(trace.step2, expected["QII"])
        assert_same_adjuncts_up_to_iso(trace.step3, expected["QIII"])

    def test_result_property(self, qhat):
        trace = min_prov_trace(qhat)
        assert trace.result == trace.step3


class TestEquivalencePreserved:
    def test_qhat(self, qhat):
        assert is_equivalent(qhat, min_prov(qhat))

    def test_qconj_becomes_qunion(self, fig1):
        """MinProv(Qconj) ≡ Qunion with exactly its two adjuncts."""
        result = min_prov(fig1.q_conj)
        assert is_equivalent(result, fig1.q_conj)
        assert_same_adjuncts_up_to_iso(result, fig1.q_union)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_queries(self, seed):
        query = random_cq(
            seed=seed, n_atoms=2, n_variables=3,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        assert is_equivalent(query, min_prov(query))

    def test_query_with_constants(self):
        query = parse_query("ans(x) :- R(x, 'a')")
        result = min_prov(query)
        assert is_equivalent(query, result)


class TestProvenanceReduced:
    """For every database, P(t, MinProv(Q), D) <= P(t, Q, D)."""

    def test_on_paper_database(self, qhat, db_table6):
        minimal = min_prov(qhat)
        assert le_on_database(minimal, qhat, db_table6)
        original = evaluate(qhat, db_table6)[()]
        reduced = evaluate(minimal, db_table6)[()]
        assert reduced == Polynomial.parse("s1 + 3*s2*s4*s5")
        assert original != reduced

    @pytest.mark.parametrize("seed", range(6))
    def test_on_random_databases(self, seed):
        query = random_cq(seed=seed, n_atoms=2, n_variables=2)
        minimal = min_prov(query)
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 5, seed=seed)
        assert le_on_database(minimal, query, db)

    def test_exhaustive_small_databases(self, fig1):
        minimal = min_prov(fig1.q_conj)
        for db in all_databases({"R": 2}, ["a", "b"], max_facts=3):
            assert le_on_database(minimal, fig1.q_conj, db)


class TestIdempotence:
    def test_minprov_of_minprov_is_stable(self, qhat):
        once = min_prov(qhat)
        twice = min_prov(once)
        assert_same_adjuncts_up_to_iso(once, twice)

    def test_union_input(self, fig1):
        result = min_prov(fig1.q_union)
        assert_same_adjuncts_up_to_iso(result, fig1.q_union)


class TestStepEffects:
    def test_step2_removes_duplicates_only(self, qhat):
        trace = min_prov_trace(qhat)
        assert len(trace.step1.adjuncts) == len(trace.step2.adjuncts)
        for before, after in zip(trace.step1.adjuncts, trace.step2.adjuncts):
            assert after.size() <= before.size()
            assert not after.duplicate_atom_indices()

    def test_step3_only_removes(self, qhat):
        trace = min_prov_trace(qhat)
        survivors = set(trace.step3.adjuncts)
        assert survivors <= set(trace.step2.adjuncts)

    def test_duplicate_adjuncts_in_union_collapse(self):
        query = parse_query("ans(x) :- R(x, x)\nans(y) :- R(y, y)")
        result = min_prov(query)
        assert len(result.adjuncts) == 1


class TestPMinimality:
    def test_qconj_not_p_minimal(self, fig1):
        """Thm. 3.11: Qconj is p-minimal in CQ but not overall."""
        assert not is_p_minimal(fig1.q_conj)

    def test_qunion_p_minimal(self, fig1):
        assert is_p_minimal(fig1.q_union)

    def test_minprov_output_p_minimal(self, qhat):
        assert is_p_minimal(min_prov(qhat))

    def test_complete_query_p_minimal(self):
        """Thm. 3.12: a duplicate-free complete query is p-minimal."""
        query = parse_query("ans(x) :- R(x, y), x != y")
        assert is_p_minimal(query)

    def test_complete_query_with_duplicates_not_p_minimal(self):
        query = parse_query("ans() :- R(x, x), R(x, x)")
        assert not is_p_minimal(query)

"""Unit and differential tests for containment and equivalence."""

import pytest

from repro.db.generators import random_cq
from repro.hom.containment import (
    is_contained,
    is_contained_canonical_db,
    is_contained_cq_fast,
    is_equivalent,
)
from repro.query.parser import parse_query


class TestPlainCQ:
    def test_example_2_9(self, fig1):
        """Q2 ⊆ Qconj (Figure 1)."""
        assert is_contained(fig1.q2, fig1.q_conj)
        assert not is_contained(fig1.q_conj, fig1.q2)

    def test_reflexive(self, fig1):
        assert is_contained(fig1.q_conj, fig1.q_conj)

    def test_more_atoms_contained_in_fewer(self):
        narrow = parse_query("ans(x) :- R(x, y), R(y, z)")
        wide = parse_query("ans(x) :- R(x, y)")
        assert is_contained(narrow, wide)
        assert not is_contained(wide, narrow)

    def test_constants_specialize(self):
        specific = parse_query("ans(x) :- R(x, 'a')")
        general = parse_query("ans(x) :- R(x, y)")
        assert is_contained(specific, general)
        assert not is_contained(general, specific)

    def test_arity_mismatch_never_contained(self):
        assert not is_contained(
            parse_query("ans(x) :- R(x)"), parse_query("ans(x, y) :- R(x, y)")
        )

    def test_fast_path_rejects_diseqs(self):
        with pytest.raises(ValueError):
            is_contained_cq_fast(
                parse_query("ans() :- R(x, y), x != y"),
                parse_query("ans() :- R(x, y)"),
            )


class TestDisequalities:
    def test_example_3_2(self):
        """Containment holds although no homomorphism exists."""
        q = parse_query("ans() :- R(x, y), R(y, z), x != z")
        q_prime = parse_query("ans() :- R(x, y), x != y")
        assert is_contained(q, q_prime)
        assert not is_contained(q_prime, q)

    def test_diseq_strengthens(self):
        strict = parse_query("ans(x) :- R(x, y), x != y")
        loose = parse_query("ans(x) :- R(x, y)")
        assert is_contained(strict, loose)
        assert not is_contained(loose, strict)

    def test_figure2_equivalences(self, fig2):
        """QnoPmin ≡ Qalt ≡ Qalt2 ≡ Qalt3 (Thm. 3.5 setup)."""
        assert is_equivalent(fig2.q_no_pmin, fig2.q_alt)
        assert is_equivalent(fig2.q_no_pmin, fig2.q_alt2)
        assert is_equivalent(fig2.q_no_pmin, fig2.q_alt3)

    def test_complete_queries_hom_criterion(self):
        q1 = parse_query("ans(x) :- R(x, y), x != y")
        q2 = parse_query("ans(x) :- R(x, y)")
        # q1 is complete; containment in q2 reduces to one hom test.
        assert is_contained(q1, q2)


class TestUnions:
    def test_adjunct_contained_in_union(self, fig1):
        assert is_contained(fig1.q2, fig1.q_union)
        assert is_contained(fig1.q1, fig1.q_union)

    def test_theorem_setup_qunion_equiv_qconj(self, fig1):
        """The running example: Qunion ≡ Qconj (Example 2.18)."""
        assert is_equivalent(fig1.q_union, fig1.q_conj)

    def test_union_not_contained_in_single_adjunct(self, fig1):
        assert not is_contained(fig1.q_union, fig1.q1)

    def test_lemma_4_9_through_unions(self):
        complete = parse_query("ans(x) :- R(x, x)")
        union = parse_query("ans(x) :- R(x, y)\nans(x) :- S(x)")
        assert is_contained(complete, union)


class TestCanonicalDatabaseOracle:
    def test_matches_hom_on_paper_queries(self, fig1):
        assert is_contained_canonical_db(fig1.q2, fig1.q_conj)
        assert not is_contained_canonical_db(fig1.q_conj, fig1.q2)

    @pytest.mark.parametrize("seed", range(20))
    def test_differential_on_random_cqs(self, seed):
        q1 = random_cq(seed=seed, n_atoms=3, n_variables=3)
        q2 = random_cq(seed=seed + 1000, n_atoms=2, n_variables=3)
        if q1.arity != q2.arity:
            pytest.skip("different head arities")
        assert is_contained(q1, q2) == is_contained_canonical_db(q1, q2)
        assert is_contained(q2, q1) == is_contained_canonical_db(q2, q1)

"""The ``repro.client`` library against live servers on both tiers.

What must hold:

* the v1 error envelope maps to the typed exception hierarchy (codes,
  not string matching);
* one connection is reused across calls, and a stale keep-alive is
  re-dialed transparently exactly once;
* ``Subscription.events()`` speaks both changefeed transports
  (auto-detected), decodes events, and resumes across disconnects;
* ``Subscription.apply`` keeps the locally replayed table equal to the
  server's view.
"""

import json
import threading
import time

import pytest

from repro.client import (
    APIError,
    BadRequestError,
    Client,
    NotFoundError,
    SubscriptionLimitError,
    TransportError,
    UnknownSubscriptionError,
    UnknownViewError,
    _raise_for,
)
from repro.query.parser import parse_program
from repro.server.app import canonical_json, encode_results

from test_server import JOIN, serve, small_db

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")

PROGRAM = "V(x, z) :- R(x, y), S(y, z)"


@pytest.fixture(scope="module", params=["threaded", "async"])
def served(request):
    with serve(
        small_db(), program=parse_program(PROGRAM), server_mode=request.param
    ) as (server, raw_client):
        client = Client(raw_client.host, raw_client.port, timeout=30)
        try:
            yield server, client
        finally:
            client.close()


class TestErrorMapping:
    def test_codes_map_to_typed_exceptions(self):
        cases = {
            "bad_request": BadRequestError,
            "not_found": NotFoundError,
            "unknown_view": UnknownViewError,
            "unknown_subscription": UnknownSubscriptionError,
            "subscription_limit": SubscriptionLimitError,
        }
        for code, cls in cases.items():
            body = json.dumps(
                {"error": {"code": code, "message": "m", "detail": None}}
            ).encode()
            error = _raise_for(400, body)
            assert isinstance(error, cls)
            assert (error.code, error.message) == (code, "m")

    def test_unknown_code_falls_back_by_status(self):
        body = json.dumps(
            {"error": {"code": "novel", "message": "m", "detail": "d"}}
        ).encode()
        assert type(_raise_for(418, body)) is APIError
        assert _raise_for(418, body).detail == "d"

    def test_legacy_and_garbage_bodies_still_map(self):
        legacy = _raise_for(404, b'{"error": "plain message"}')
        assert isinstance(legacy, APIError)
        assert legacy.message == "plain message"
        garbage = _raise_for(500, b"not json at all")
        assert garbage.message == "not json at all"


class TestClientSurface:
    def test_query_and_batch(self, served):
        _server, client = served
        payload = client.query(JOIN)
        assert payload["kind"] == "polynomial" and payload["results"]
        batch = client.batch([JOIN, JOIN])
        assert batch["results"][0] == batch["results"][1]

    def test_bad_query_raises_typed_400(self, served):
        _server, client = served
        with pytest.raises(BadRequestError) as excinfo:
            client.query("this is not rule text")
        assert excinfo.value.status == 400

    def test_view_and_decoded_table(self, served):
        _server, client = served
        payload = client.view("V")
        assert payload["view"] == "V"
        table = client.view_table("V")
        assert set(table) == {
            tuple(entry["tuple"]) for entry in payload["results"]
        }
        with pytest.raises(NotFoundError):
            client.view("nope")

    def test_connection_is_reused(self, served):
        _server, client = served
        client.stats()
        first = client._connection
        assert first is not None
        client.stats()
        assert client._connection is first

    def test_stale_keepalive_is_redialed_once(self, served):
        _server, client = served
        client.stats()
        # Kill the socket under the reused connection: the next call
        # must re-dial transparently instead of surfacing the error.
        client._connection.sock.close()
        assert "db_version" in client.stats()

    def test_unreachable_server_raises_transport_error(self):
        client = Client("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(TransportError):
            client.stats()


class TestClientSubscriptions:
    def test_subscribe_decodes_snapshot(self, served):
        _server, client = served
        sub = client.subscribe(view="V")
        try:
            assert sub.view == "V" and not sub.aggregate
            assert all(isinstance(row, tuple) for row in sub.state)
        finally:
            sub.close()

    def test_unknown_view_raises(self, served):
        _server, client = served
        with pytest.raises(UnknownViewError):
            client.subscribe(view="missing")

    def test_events_follow_updates_and_replay_matches(self, served):
        server, client = served
        sub = client.subscribe(view="V")
        got = []

        def consume():
            for event in sub.events(poll_wait=2.0):
                sub.apply(event)
                got.append(event)
                if len(got) == 2:
                    return

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        time.sleep(0.3)
        try:
            token = "cl%d" % time.monotonic_ns()
            client.update(insert={"R": [["a", token]], "S": [[token, 1]]})
            client.update(insert={"S": [[token, 2]]})
            consumer.join(timeout=20)
            assert len(got) == 2
            cursors = [event["cursor"] for event in got]
            assert cursors == sorted(cursors)
            assert sub.cursor == cursors[-1]
            direct = json.loads(server.state.read_view("V"))
            assert canonical_json(
                encode_results(sub.state, False)
            ) == canonical_json(
                {"kind": direct["kind"], "results": direct["results"]}
            )
        finally:
            sub.close()

    def test_events_raise_once_unsubscribed(self, served):
        _server, client = served
        sub = client.subscribe(view="V")
        sub.close()
        with pytest.raises(UnknownSubscriptionError):
            next(sub.events())

    def test_query_subscription_names_a_fresh_view(self, served):
        _server, client = served
        sub = client.subscribe(query="W(x) :- S(x, y)")
        try:
            assert sub.view.startswith("_sub_")
            assert client.view(sub.view)["results"]
        finally:
            sub.close()

"""Unit tests for the rule parser and printer round-trip."""

import pytest

from repro.errors import ParseError
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import parse_program, parse_query, parse_rules
from repro.query.printer import cq_to_str, query_to_latex, query_to_str
from repro.query.terms import Constant
from repro.query.ucq import UnionQuery


class TestBasicParsing:
    def test_simple_rule(self):
        query = parse_query("ans(x) :- R(x, y)")
        assert isinstance(query, ConjunctiveQuery)
        assert query.size() == 1
        assert query.arity == 1

    def test_paper_arrow_accepted(self):
        assert parse_query("ans(x) := R(x)") == parse_query("ans(x) :- R(x)")

    def test_trailing_period(self):
        assert parse_query("ans(x) :- R(x).") == parse_query("ans(x) :- R(x)")

    def test_string_constants(self):
        query = parse_query("ans(x) :- S(x, 'c')")
        assert Constant("c") in query.constants()

    def test_double_quoted_constants(self):
        query = parse_query('ans(x) :- S(x, "c")')
        assert Constant("c") in query.constants()

    def test_integer_constants(self):
        query = parse_query("ans(x) :- S(x, 42)")
        assert Constant(42) in query.constants()

    def test_negative_integer(self):
        query = parse_query("ans(x) :- S(x, -3)")
        assert Constant(-3) in query.constants()

    def test_disequalities(self):
        query = parse_query("ans(x) :- R(x, y), x != y, y != 'c'")
        assert len(query.disequalities) == 2

    def test_alternative_neq_tokens(self):
        q1 = parse_query("ans(x) :- R(x, y), x != y")
        q2 = parse_query("ans(x) :- R(x, y), x <> y")
        assert q1 == q2

    def test_boolean_head(self):
        query = parse_query("ans() :- R(x)")
        assert query.is_boolean()

    def test_comments_ignored(self):
        query = parse_query("# header\nans(x) :- R(x)  # tail\n% datalog style")
        assert query.size() == 1


class TestUnionsAndPrograms:
    def test_two_rules_make_a_union(self):
        query = parse_query("ans(x) :- R(x)\nans(x) :- S(x)")
        assert isinstance(query, UnionQuery)

    def test_parse_program_groups_by_head(self):
        program = parse_program(
            "view(x) :- R(x)\nview(x) :- S(x)\nother(x) :- T(x)"
        )
        assert set(program) == {"view", "other"}
        assert isinstance(program["view"], UnionQuery)
        assert isinstance(program["other"], ConjunctiveQuery)

    def test_parse_rules_returns_list(self):
        rules = parse_rules("a(x) :- R(x). a(y) :- S(y).")
        assert len(rules) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "ans(x)",
            "ans(x) :- ",
            "ans(x) :- R(x,)",
            "ans(x) :- R(x) S(x)",
            "ans(x) :- x != ",
            "ans(x) :- R(x), !",
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_query("ans(x) :- R(x) $$")
        assert info.value.position >= 0


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "ans(x) :- R(x, y)",
            "ans(x, y) :- R(x, y), S(y, 'c'), x != y, y != 'c'",
            "ans() :- R(x), R(y), x != y",
            "ans(x) :- R(x, 3)",
            "ans('k', x) :- R(x)",
        ],
    )
    def test_print_then_parse_is_identity(self, text):
        query = parse_query(text)
        assert parse_query(query_to_str(query)) == query

    def test_union_round_trip(self, fig1):
        assert parse_query(query_to_str(fig1.q_union)) == fig1.q_union

    def test_cq_to_str_deterministic(self):
        query = parse_query("ans(x) :- R(x, y), y != x, x != 'a'")
        assert cq_to_str(query) == cq_to_str(parse_query(cq_to_str(query)))

    def test_latex_output_mentions_neq(self, fig1):
        assert r"\neq" in query_to_latex(fig1.q1)
        assert r"\cup" in query_to_latex(fig1.q_union)

"""Unit tests for standard (join-count) minimization."""

import pytest

from repro.db.generators import random_cq
from repro.errors import UnsupportedQueryError
from repro.hom.containment import is_equivalent
from repro.hom.homomorphism import is_isomorphic
from repro.minimize.standard import (
    minimize_complete,
    minimize_cq,
    minimize_cq_diseq,
    minimize_query,
    minimize_ucq,
    remove_contained_adjuncts,
)
from repro.query.parser import parse_query
from repro.query.ucq import UnionQuery


class TestChandraMerlin:
    def test_redundant_atom_removed(self):
        query = parse_query("ans(x) :- R(x, y), R(x, z)")
        assert minimize_cq(query).size() == 1

    def test_core_preserves_equivalence(self):
        query = parse_query("ans(x) :- R(x, y), R(y, z), R(x, w)")
        minimal = minimize_cq(query)
        assert is_equivalent(query, minimal)

    def test_already_minimal_untouched(self, fig1):
        assert minimize_cq(fig1.q_conj) == fig1.q_conj

    def test_triangle_is_core(self):
        triangle = parse_query("ans() :- R(x, y), R(y, z), R(z, x)")
        assert minimize_cq(triangle).size() == 3

    def test_triangle_with_reflexive_shortcut_folds(self):
        query = parse_query("ans() :- R(x, y), R(y, z), R(z, x), R(w, w)")
        assert minimize_cq(query).size() == 1

    def test_constants_respected(self):
        query = parse_query("ans() :- R(x, 'a'), R(y, 'b')")
        assert minimize_cq(query).size() == 2

    def test_rejects_disequalities(self):
        with pytest.raises(UnsupportedQueryError):
            minimize_cq(parse_query("ans() :- R(x, y), x != y"))

    @pytest.mark.parametrize("seed", range(10))
    def test_random_cqs_minimized_equivalently(self, seed):
        query = random_cq(seed=seed, n_atoms=4, n_variables=3)
        minimal = minimize_cq(query)
        assert minimal.size() <= query.size()
        assert is_equivalent(query, minimal)

    def test_core_unique_up_to_isomorphism(self):
        # Minimizing two presentations of the same query gives
        # isomorphic cores.
        q1 = parse_query("ans(x) :- R(x, y), R(x, z), S(y)")
        q2 = parse_query("ans(x) :- R(x, b), S(b), R(x, a), R(x, c)")
        assert is_isomorphic(minimize_cq(q1), minimize_cq(q2))


class TestCompleteMinimization:
    def test_duplicates_removed(self):
        query = parse_query("ans() :- R(x, x), R(x, x)")
        assert minimize_complete(query).size() == 1

    def test_lemma_3_13_no_duplicates_means_minimal(self):
        query = parse_query("ans() :- R(x, y), R(y, x), x != y")
        assert minimize_complete(query) == query

    def test_rejects_incomplete(self):
        with pytest.raises(UnsupportedQueryError):
            minimize_complete(parse_query("ans() :- R(x, y)"))


class TestDisequalityMinimization:
    def test_removable_atom_with_diseq(self):
        query = parse_query("ans(x) :- R(x, y), R(x, z), x != y, x != z")
        minimal = minimize_cq_diseq(query)
        assert minimal.size() == 1
        assert is_equivalent(query, minimal)

    def test_figure2_already_minimal(self, fig2):
        assert minimize_cq_diseq(fig2.q_no_pmin).size() == 6

    def test_dispatches_to_cq_when_no_diseqs(self):
        query = parse_query("ans(x) :- R(x, y), R(x, z)")
        assert minimize_cq_diseq(query).size() == 1


class TestUnionMinimization:
    def test_contained_adjunct_removed(self, fig1):
        union = UnionQuery([fig1.q_conj, fig1.q2])  # Q2 ⊆ Qconj
        minimal = minimize_ucq(union)
        assert len(minimal.adjuncts) == 1
        assert is_equivalent(minimal, union)

    def test_equivalent_adjuncts_keep_one(self):
        union = parse_query("ans(x) :- R(x, y)\nans(u) :- R(u, w)")
        assert len(minimize_ucq(union).adjuncts) == 1

    def test_incomparable_adjuncts_kept(self, fig1):
        minimal = minimize_ucq(fig1.q_union)
        assert len(minimal.adjuncts) == 2

    def test_adjuncts_individually_minimized(self):
        union = parse_query("ans(x) :- R(x, y), R(x, z)\nans(x) :- S(x)")
        minimal = minimize_ucq(union)
        assert {a.size() for a in minimal.adjuncts} == {1}

    def test_remove_contained_survivor_semantics(self):
        a = parse_query("ans(x) :- R(x, y)")
        b = parse_query("ans(u) :- R(u, w)")
        survivors = remove_contained_adjuncts([a, b])
        assert survivors == [a]

    def test_minimize_query_dispatch(self, fig1):
        assert minimize_query(fig1.q_conj) == fig1.q_conj
        assert isinstance(minimize_query(fig1.q_union), UnionQuery)

"""Unit and differential tests for Hopcroft-Karp matching."""

import random

import networkx as nx
import pytest

from repro.utils.matching import (
    greedy_matching_size,
    maximum_matching,
    maximum_matching_size,
)


class TestSmallGraphs:
    def test_empty_graph(self):
        assert maximum_matching_size([], 0) == 0

    def test_no_edges(self):
        assert maximum_matching_size([[], []], 3) == 0

    def test_perfect_matching(self):
        assert maximum_matching_size([[0], [1]], 2) == 2

    def test_competition_for_one_vertex(self):
        assert maximum_matching_size([[0], [0]], 1) == 1

    def test_augmenting_path_needed(self):
        # Greedy picks 0-0, blocking 1; maximum re-routes 0-1, 1-0.
        adjacency = [[0, 1], [0]]
        assert maximum_matching_size(adjacency, 2) == 2

    def test_returns_valid_matching(self):
        adjacency = [[0, 1], [0], [1, 2]]
        match_left = maximum_matching(adjacency, 3)
        used = [v for v in match_left if v is not None]
        assert len(used) == len(set(used))
        for u, v in enumerate(match_left):
            if v is not None:
                assert v in adjacency[u]


class TestDifferentialAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_graph_matches_networkx(self, seed):
        rng = random.Random(seed)
        n_left = rng.randint(0, 8)
        n_right = rng.randint(0, 8)
        adjacency = [
            [v for v in range(n_right) if rng.random() < 0.4]
            for _ in range(n_left)
        ]
        ours = maximum_matching_size(adjacency, n_right)
        graph = nx.Graph()
        graph.add_nodes_from(("L", u) for u in range(n_left))
        graph.add_nodes_from(("R", v) for v in range(n_right))
        for u, neighbours in enumerate(adjacency):
            for v in neighbours:
                graph.add_edge(("L", u), ("R", v))
        theirs = len(
            nx.bipartite.maximum_matching(
                graph, top_nodes=[("L", u) for u in range(n_left)]
            )
        ) // 2
        assert ours == theirs


class TestGreedyBaseline:
    def test_greedy_never_exceeds_maximum(self):
        rng = random.Random(7)
        for _ in range(50):
            n_right = rng.randint(1, 6)
            adjacency = [
                [v for v in range(n_right) if rng.random() < 0.5]
                for _ in range(rng.randint(1, 6))
            ]
            assert greedy_matching_size(adjacency, n_right) <= maximum_matching_size(
                adjacency, n_right
            )

    def test_greedy_suboptimal_example(self):
        adjacency = [[0, 1], [0]]
        assert greedy_matching_size(adjacency, 2) == 1
        assert maximum_matching_size(adjacency, 2) == 2

"""The observability layer: metrics registry, tracing spans, overhead.

The load-bearing claims:

* **exposition correctness** — ``MetricsRegistry.render()`` emits valid
  Prometheus text exposition: HELP/TYPE headers, escaped labels,
  cumulative histogram buckets ending in ``+Inf``, count/sum series;
* **span trees** — a traced hashjoin evaluation records
  parse-less ``plan → join → join.step → merge`` stages with the
  attributes the trace viewer prints; sharded evaluation adds the
  fan-out stages;
* **disabled means free** — with no tracer installed every
  instrumentation point receives the same shared no-op objects, and a
  spy tracer proves the engine opens O(join steps) spans, never
  O(tuples).
"""

import json
import threading

import pytest

from repro.db.instance import AnnotatedDatabase
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    histogram_percentiles,
    set_default_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    current_tracer,
    format_trace,
    tracing,
    tree_stage_names,
)
from repro.query.parser import parse_query
from repro.session import QuerySession

JOIN = parse_query("ans(x, z) :- R(x, y), S(y, z)")
AGG = parse_query("agg(x, count(*)) :- R(x, y)")


def join_db(n=30):
    return AnnotatedDatabase.from_rows(
        {
            "R": [("a{}".format(i % 5), i) for i in range(n)],
            "S": [(i, "z{}".format(i % 3)) for i in range(n)],
        }
    )


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = Counter("c_total", "", ("endpoint",))
        counter.inc(endpoint="/query")
        counter.inc(3, endpoint="/batch")
        assert counter.value(endpoint="/query") == 1.0
        assert counter.value(endpoint="/batch") == 3.0
        assert counter.series() == {("/query",): 1.0, ("/batch",): 3.0}

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_label_set_rejected(self):
        counter = Counter("c_total", "", ("endpoint",))
        with pytest.raises(ValueError):
            counter.inc(method="GET")
        with pytest.raises(ValueError):
            counter.inc()

    def test_thread_safety_no_lost_updates(self):
        counter = Counter("c_total", "")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12.0

    def test_gauges_may_go_negative(self):
        gauge = Gauge("g", "")
        gauge.dec(2)
        assert gauge.value() == -2.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = Histogram("h_seconds", "", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        data = hist.snapshot()[()]
        assert data["counts"] == [1, 1, 1, 1]  # one per bucket + overflow
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(55.55)

    def test_bucket_boundary_is_inclusive(self):
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le="1.0" must include it
        assert hist.snapshot()[()]["counts"] == [1, 0, 0]

    def test_percentile_interpolates(self):
        hist = Histogram("h", "", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)
        p50 = hist.percentile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_percentile_caps_at_last_finite_bound(self):
        hist = Histogram("h", "", buckets=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.percentile(0.99) == 2.0

    def test_percentile_empty_series_is_none(self):
        hist = Histogram("h", "", buckets=(1.0,))
        assert hist.percentile(0.5) is None

    def test_percentile_ordering_is_monotone(self):
        hist = Histogram("h", "")
        for i in range(200):
            hist.observe(0.001 * (i % 50))
        p = histogram_percentiles(hist)
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=(2.0, 1.0))

    def test_default_buckets_cover_micro_to_human(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 5.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "first", ("l",))
        b = registry.counter("x_total", "second", ("l",))
        assert a is b

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labelnames=("b",))

    def test_collect_is_name_ordered(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.counter("a_total")
        assert [m.name for m in registry.collect()] == ["a_total", "b_total"]

    def test_default_registry_swap(self):
        previous = set_default_registry(NULL_REGISTRY)
        try:
            assert default_registry() is NULL_REGISTRY
        finally:
            set_default_registry(previous)
        assert default_registry() is previous


class TestExposition:
    def test_counter_exposition_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "Requests", ("endpoint",))
        counter.inc(endpoint="/query")
        text = registry.render()
        assert "# HELP req_total Requests\n" in text
        assert "# TYPE req_total counter\n" in text
        assert 'req_total{endpoint="/query"} 1\n' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "", ("q",))
        counter.inc(q='say "hi"\nplease\\now')
        assert '\\"hi\\"' in registry.render()
        assert "\\n" in registry.render()

    def test_histogram_exposition_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_every_sample_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "x", ("l",)).inc(l="v")
        registry.gauge("b", "y").set(2)
        registry.histogram("c_seconds", "z").observe(0.3)
        for line in registry.render().splitlines():
            if line.startswith("#") or not line:
                continue
            name, _space, value = line.rpartition(" ")
            assert name
            float(value)  # must parse

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


class TestNullRegistry:
    def test_all_instruments_are_the_shared_null_metric(self):
        assert NULL_REGISTRY.counter("a") is NULL_METRIC
        assert NULL_REGISTRY.gauge("b") is NULL_METRIC
        assert NULL_REGISTRY.histogram("c") is NULL_METRIC

    def test_null_metric_absorbs_everything(self):
        NULL_METRIC.inc(5, any_label="x")
        NULL_METRIC.observe(1.0)
        NULL_METRIC.set(3)
        assert NULL_METRIC.value() == 0.0
        assert NULL_METRIC.percentile(0.5) is None

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False

    def test_render_is_empty(self):
        assert NULL_REGISTRY.render() == ""


class TestTracer:
    def test_nesting_and_attributes(self):
        tracer = Tracer("root")
        with tracer.span("outer", a=1) as outer:
            with tracer.span("inner"):
                pass
            outer.set(b=2)
        tree = tracer.tree()
        assert tree["name"] == "root"
        (outer_node,) = tree["children"]
        assert outer_node["attrs"] == {"a": 1, "b": 2}
        assert [c["name"] for c in outer_node["children"]] == ["inner"]

    def test_durations_are_positive_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tree = tracer.tree()
        outer = tree["children"][0]
        assert outer["duration_ms"] >= outer["children"][0]["duration_ms"] >= 0

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        cm = tracer.span("left-open")
        cm.__enter__()
        first = tracer.finish()
        end = first.end_ns
        assert tracer.finish().end_ns == end

    def test_exception_unwinds_cleanly(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.stage_names() == ["trace", "outer", "inner"]

    def test_registry_histogram_fed_per_stage(self):
        registry = MetricsRegistry()
        with tracing("query", registry=registry) as tracer:
            with tracer.span("plan"):
                pass
        hist = registry.get("repro_stage_seconds")
        assert hist is not None
        assert ("plan",) in hist.snapshot()
        assert ("query",) in hist.snapshot()

    def test_ambient_tracer_install_and_restore(self):
        assert current_tracer() is NULL_TRACER
        with tracing("outer") as outer:
            assert current_tracer() is outer
            with tracing("inner") as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is NULL_TRACER

    def test_tracers_are_context_isolated_across_threads(self):
        seen = []

        def probe():
            seen.append(current_tracer())

        with tracing("main"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [NULL_TRACER]

    def test_format_trace_renders_attrs(self):
        with tracing("query") as tracer:
            with tracer.span("plan", cache="miss"):
                pass
        text = format_trace(tracer.tree())
        assert text.splitlines()[0].startswith("query (")
        assert "  plan (" in text
        assert "cache=miss" in text

    def test_format_trace_of_empty_tree(self):
        assert format_trace({}) == "(empty trace)"

    def test_tree_stage_names_matches_walk(self):
        with tracing("a") as tracer:
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert tree_stage_names(tracer.tree()) == ["a", "b", "c"]


class TestNullPath:
    """Disabled tracing must stay off the engine's hot path."""

    def test_null_tracer_span_is_one_shared_object(self):
        first = NULL_TRACER.span("anything", attr=1)
        second = NULL_TRACER.span("else")
        assert first is second

    def test_null_span_absorbs_set_and_end(self):
        with NULL_TRACER.span("x") as span:
            span.set(rows=1)
            span.end()
        assert NULL_TRACER.tree() == {}

    def test_engine_spans_are_per_step_not_per_tuple(self):
        """A spy tracer counts span openings: O(plan steps), not O(rows)."""

        class SpyTracer(Tracer):
            opened = 0

            def span(self, name, **attrs):
                SpyTracer.opened += 1
                return super().span(name, **attrs)

        db = join_db(n=200)  # 400 facts; a per-tuple bug would open 100s
        from repro.obs import trace as trace_module

        spy = SpyTracer("spy")
        token = trace_module._ACTIVE.set(spy)
        try:
            with QuerySession(db, engine="hashjoin") as session:
                session.evaluate_batch([JOIN])
        finally:
            trace_module._ACTIVE.reset(token)
        # plan + join + one join.step per relation + merge — and headroom
        # for a couple of future stages, but nowhere near the row count.
        assert SpyTracer.opened <= 10, SpyTracer.opened


class TestEngineSpanTrees:
    def test_hashjoin_stage_names(self):
        with tracing("query") as tracer:
            with QuerySession(join_db(), engine="hashjoin") as session:
                session.evaluate_batch([JOIN])
        names = tree_stage_names(tracer.tree())
        for want in ("plan", "join", "join.step", "merge"):
            assert want in names, (want, names)
        assert "shard.refresh" not in names

    def test_hashjoin_plan_cache_attrs(self):
        with tracing("query") as tracer:
            with QuerySession(join_db(), engine="hashjoin") as session:
                session.evaluate_batch([JOIN])
                session.refresh()  # drop the memo, keep the plan cache
                session.evaluate_batch([JOIN])
        plans = [
            span
            for span in tracer.root.walk()
            if span.name == "plan"
        ]
        assert [span.attrs["cache"] for span in plans] == ["miss", "hit"]

    def test_join_step_attrs_carry_rows_and_bindings(self):
        with tracing("query") as tracer:
            with QuerySession(join_db(), engine="hashjoin") as session:
                session.evaluate_batch([JOIN])
        steps = [
            span for span in tracer.root.walk() if span.name == "join.step"
        ]
        assert [span.attrs["relation"] for span in steps] == ["R", "S"]
        assert all(span.attrs["rows"] == 30 for span in steps)

    def test_sharded_stage_names(self):
        with tracing("query") as tracer:
            with QuerySession(
                join_db(), engine="sharded", shards=2, workers=2,
                mode="thread", broadcast_threshold=0,
            ) as session:
                session.evaluate_batch([JOIN])
        names = tree_stage_names(tracer.tree())
        for want in ("shard.refresh", "plan", "join", "shard.merge", "merge"):
            assert want in names, (want, names)
        join_span = next(
            span for span in tracer.root.walk() if span.name == "join"
        )
        assert join_span.attrs["engine"] == "sharded"
        assert join_span.attrs["shards"] == 2
        assert join_span.attrs["mode"] == "thread"

    def test_aggregate_stage_names(self):
        with tracing("query") as tracer:
            with QuerySession(join_db(), engine="hashjoin") as session:
                session.evaluate_batch([AGG])
        names = tree_stage_names(tracer.tree())
        for want in ("join", "aggregate.fold"):
            assert want in names, (want, names)

    def test_tracing_leaves_results_identical(self):
        db = join_db()
        with QuerySession(db, engine="hashjoin") as session:
            plain = session.evaluate_batch([JOIN])[0]
        with tracing("query"):
            with QuerySession(db, engine="hashjoin") as session:
                traced = session.evaluate_batch([JOIN])[0]
        assert traced == plain


class TestCliTrace:
    def test_trace_subcommand_prints_tree(self, tmp_path, capsys):
        import io

        from repro.cli import main

        data = tmp_path / "data.json"
        data.write_text(
            json.dumps(
                {"R": [["a", "b"], ["b", "c"]], "S": [["b", 1], ["c", 2]]}
            )
        )
        out = io.StringIO()
        code = main(
            ["trace", "ans(x, z) :- R(x, y), S(y, z)", "-d", str(data)],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert text.startswith("query (")
        for stage in ("parse", "plan", "join", "merge"):
            assert "{} (".format(stage) in text, text
        assert "result tuples" in text

    def test_trace_subcommand_json_mode(self, tmp_path):
        import io

        from repro.cli import main

        data = tmp_path / "data.json"
        data.write_text(json.dumps({"R": [["a", "b"]]}))
        out = io.StringIO()
        code = main(
            ["trace", "ans(x) :- R(x, y)", "-d", str(data), "--json"], out=out
        )
        assert code == 0
        tree = json.loads(out.getvalue())
        assert tree["name"] == "query"
        assert "parse" in tree_stage_names(tree)

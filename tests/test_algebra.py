"""Unit and differential tests for the K-relation algebra engine."""

import pytest

from repro.algebra.compile import (
    compile_cq_to_plan,
    compile_query_to_plan,
    evaluate_in_semiring,
    evaluate_via_algebra,
)
from repro.algebra.krelation import KRelation
from repro.algebra.operators import (
    Join,
    Projection,
    RelationScan,
    Rename,
    Selection,
    Union,
)
from repro.db.generators import random_cq, random_database, random_ucq
from repro.engine.evaluate import evaluate
from repro.errors import EvaluationError, SchemaError
from repro.query.parser import parse_query
from repro.semiring.boolean import BooleanSemiring
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.natural import NaturalSemiring
from repro.semiring.polynomial import Polynomial
from repro.semiring.tropical import TropicalSemiring

NAT = NaturalSemiring()


class TestKRelation:
    def test_zero_annotated_rows_absent(self):
        rel = KRelation(("a",), NAT)
        rel.add(("x",), 0)
        assert len(rel) == 0
        assert rel.annotation(("x",)) == 0

    def test_add_accumulates(self):
        rel = KRelation(("a",), NAT)
        rel.add(("x",), 2)
        rel.add(("x",), 3)
        assert rel.annotation(("x",)) == 5

    def test_accumulating_to_zero_removes(self):
        from repro.semiring.tropical import TropicalSemiring

        tropical = TropicalSemiring()
        rel = KRelation(("a",), tropical)
        rel.add(("x",), 3.0)
        rel.add(("x",), tropical.zero)
        assert rel.annotation(("x",)) == 3.0  # min(3, inf) = 3 stays

    def test_arity_enforced(self):
        rel = KRelation(("a", "b"), NAT)
        with pytest.raises(SchemaError):
            rel.add(("x",), 1)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            KRelation(("a", "a"), NAT)

    def test_index_of_unknown(self):
        with pytest.raises(SchemaError):
            KRelation(("a",), NAT).index_of("z")


class TestOperators:
    @pytest.fixture
    def context(self):
        edges = KRelation(("c0", "c1"), NAT)
        edges.add(("a", "b"), 1)
        edges.add(("b", "a"), 2)
        edges.add(("a", "a"), 3)
        return {"R": edges}

    def test_scan(self, context):
        result = RelationScan("R").execute(context, NAT)
        assert len(result) == 3

    def test_scan_unknown_relation(self, context):
        with pytest.raises(EvaluationError):
            RelationScan("Nope").execute(context, NAT)

    def test_selection_eq_const(self, context):
        plan = Selection(
            RelationScan("R"), (("eq", ("attr", "c0"), ("const", "a")),)
        )
        result = plan.execute(context, NAT)
        assert sorted(result.support()) == [("a", "a"), ("a", "b")]

    def test_selection_neq_attrs(self, context):
        plan = Selection(
            RelationScan("R"), (("neq", ("attr", "c0"), ("attr", "c1")),)
        )
        result = plan.execute(context, NAT)
        assert sorted(result.support()) == [("a", "b"), ("b", "a")]

    def test_projection_sums_merged_rows(self, context):
        plan = Projection(RelationScan("R"), (("attr", "h0", "c0"),))
        result = plan.execute(context, NAT)
        assert result.annotation(("a",)) == 1 + 3
        assert result.annotation(("b",)) == 2

    def test_projection_constant_column(self, context):
        plan = Projection(
            RelationScan("R"), (("const", "h0", "k"), ("attr", "h1", "c1"))
        )
        result = plan.execute(context, NAT)
        assert result.annotation(("k", "b")) == 1

    def test_join_multiplies(self, context):
        left = Rename(RelationScan("R"), (("c0", "x"), ("c1", "y")))
        right = Rename(RelationScan("R"), (("c0", "y"), ("c1", "z")))
        result = Join(left, right).execute(context, NAT)
        # (a,b)*(b,a): 1*2; (a,a)*(a,b): 3*1; etc.
        assert result.annotation(("a", "b", "a")) == 2
        assert result.annotation(("a", "a", "b")) == 3

    def test_union_adds(self, context):
        plan = Union((RelationScan("R"), RelationScan("R")))
        result = plan.execute(context, NAT)
        assert result.annotation(("a", "b")) == 2

    def test_union_schema_mismatch(self, context):
        renamed = Rename(RelationScan("R"), (("c0", "x"),))
        with pytest.raises(SchemaError):
            Union((RelationScan("R"), renamed)).execute(context, NAT)

    def test_describe_renders_tree(self, context):
        plan = Projection(
            Selection(RelationScan("R"), (("eq", ("attr", "c0"), ("const", "a")),)),
            (("attr", "h0", "c1"),),
        )
        text = plan.describe()
        assert "Project" in text and "Select" in text and "Scan(R)" in text


class TestCompilation:
    def test_plan_shape(self, fig1):
        plan = compile_cq_to_plan(fig1.q_conj)
        text = plan.describe()
        assert text.count("Scan(R)") == 2
        assert "Join" in text

    def test_union_plan(self, fig1):
        plan = compile_query_to_plan(fig1.q_union)
        assert isinstance(plan, Union)


class TestDifferentialAgainstEngines:
    def test_table3(self, fig1, db_table2):
        assert evaluate_via_algebra(fig1.q_union, db_table2) == evaluate(
            fig1.q_union, db_table2
        )

    def test_qconj_squares(self, fig1, db_table2):
        result = evaluate_via_algebra(fig1.q_conj, db_table2)
        assert result[("a",)] == Polynomial.parse("s1^2 + s2*s3")

    def test_missing_relation(self, db_table2):
        assert evaluate_via_algebra(parse_query("ans(x) :- Nope(x)"), db_table2) == {}

    @pytest.mark.parametrize("seed", range(10))
    def test_random_cqs(self, seed):
        query = random_cq(
            seed=seed, n_atoms=3, n_variables=3,
            diseq_probability=0.3 if seed % 2 else 0.0,
        )
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 5, seed=seed)
        assert evaluate_via_algebra(query, db) == evaluate(query, db)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_unions(self, seed):
        query = random_ucq(seed=seed, n_adjuncts=2, n_atoms=2, n_variables=3)
        db = random_database({"R": 2, "S": 1}, ["a", "b"], 4, seed=seed)
        assert evaluate_via_algebra(query, db) == evaluate(query, db)

    def test_constants_and_head_constants(self, db_table2):
        query = parse_query("ans('k', x) :- R(x, 'a'), x != 'a'")
        assert evaluate_via_algebra(query, db_table2) == evaluate(query, db_table2)


class TestDirectSemiringEvaluation:
    """Universality: evaluating in K directly == specializing N[X]."""

    @pytest.mark.parametrize(
        "semiring,valuation",
        [
            (BooleanSemiring(), lambda s: s != "s2"),
            (NaturalSemiring(), lambda s: (len(s) + 1)),
            (TropicalSemiring(), lambda s: float(int(s[1:]))),
        ],
        ids=["boolean", "natural", "tropical"],
    )
    def test_factors_through_nx(self, fig1, db_table2, semiring, valuation):
        direct = evaluate_in_semiring(fig1.q_union, db_table2, semiring, valuation)
        polynomials = evaluate(fig1.q_union, db_table2)
        specialized = {
            output: evaluate_polynomial(p, semiring, valuation)
            for output, p in polynomials.items()
        }
        # Direct evaluation may drop rows whose value is the semiring
        # zero (finite support); specialization keeps them as zero.
        for output, value in specialized.items():
            assert direct.get(output, semiring.zero) == value

    def test_boolean_gives_set_semantics(self, fig1, db_table2):
        result = evaluate_in_semiring(
            fig1.q_union, db_table2, BooleanSemiring(), lambda s: True
        )
        assert result == {("a",): True, ("b",): True}

    def test_counting_gives_bag_semantics(self, fig1, db_table2):
        result = evaluate_in_semiring(
            fig1.q_conj, db_table2, NaturalSemiring(), lambda s: 1
        )
        assert result == {("a",): 2, ("b",): 2}

"""Shared fixtures: the paper's queries and databases.

Each fixture returns fresh objects (paperdata functions re-parse), so
tests cannot interfere with one another.
"""

from __future__ import annotations

import pytest

from repro.paperdata import (
    figure1,
    figure2,
    figure3_qhat,
    table2_database,
    table4_database,
    table5_database,
    table6_database,
)


@pytest.fixture
def fig1():
    """The Figure 1 queries (Q1, Q2, Qunion, Qconj)."""
    return figure1()


@pytest.fixture
def fig2():
    """The Figure 2 queries (QnoPmin, Qalt, Qalt2, Qalt3)."""
    return figure2()


@pytest.fixture
def qhat():
    """The Figure 3 triangle query Q̂."""
    return figure3_qhat()


@pytest.fixture
def db_table2():
    """The Table 2 database."""
    return table2_database()


@pytest.fixture
def db_table4():
    """The Table 4 database D."""
    return table4_database()


@pytest.fixture
def db_table5():
    """The Table 5 database D'."""
    return table5_database()


@pytest.fixture
def db_table6():
    """The Table 6 database D̂."""
    return table6_database()

"""Tests for the greedy join-ordering planner."""

import pytest

from repro.db.generators import (
    chain_query,
    random_cq,
    random_database,
    uniform_binary_database,
)
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate, evaluate_backtracking
from repro.engine.planner import evaluate_planned, order_atoms, plan_query
from repro.query.parser import parse_query


class TestOrdering:
    def test_connected_atom_follows_binding(self):
        db = AnnotatedDatabase.from_rows(
            {"Big": [("a", str(i)) for i in range(20)], "Small": [("a",)]}
        )
        query = parse_query("ans(x) :- Big(x, y), Small(x)")
        ordered = order_atoms(query, db)
        # The small relation should be scanned first.
        assert ordered.atoms[0].relation == "Small"

    def test_cartesian_product_deferred(self):
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", "b")], "S": [(str(i),) for i in range(10)]}
        )
        query = parse_query("ans(x) :- S(z), R(x, y), R(y, x)")
        ordered = order_atoms(query, db)
        # After R(x,y) is chosen, R(y,x) shares variables and should
        # precede the disconnected S(z).
        relations = [atom.relation for atom in ordered.atoms]
        assert relations.index("S") == 2

    def test_same_query_semantically(self):
        db = uniform_binary_database(4, density=0.6, seed=2)
        query = chain_query(3)
        ordered = order_atoms(query, db)
        assert ordered.head == query.head
        assert sorted(a.sort_key() for a in ordered.atoms) == sorted(
            a.sort_key() for a in query.atoms
        )
        assert ordered.disequalities == query.disequalities


class CountingDatabase(AnnotatedDatabase):
    """Counts cardinality measurements for the interning regression."""

    def __init__(self):
        super().__init__()
        self.cardinality_calls = 0

    def cardinality(self, relation):
        self.cardinality_calls += 1
        return super().cardinality(relation)


class TestCardinalityInterning:
    def _counting_db(self):
        db = CountingDatabase()
        for pair in [("a", "b"), ("b", "c"), ("c", "a")]:
            db.add("R", pair)
        db.add("S", ("a",))
        return db

    def test_order_atoms_measures_each_relation_once(self):
        db = self._counting_db()
        query = parse_query("ans(x) :- R(x, y), R(y, z), R(z, x), S(x)")
        order_atoms(query, db)
        # Four atoms over two relations: two measurements, not four.
        assert db.cardinality_calls == 2

    def test_plan_query_shares_cardinalities_across_adjuncts(self):
        db = self._counting_db()
        query = parse_query(
            "ans(x) :- R(x, y), S(x)\n"
            "ans(x) :- R(x, y), R(y, x)\n"
            "ans(x) :- S(x), R(x, x)"
        )
        plan_query(query, db)
        # Three adjuncts touching {R, S}: still two measurements.
        assert db.cardinality_calls == 2


class TestDisequalityHeavyRegression:
    """plan_query must preserve adjunct/disequality structure exactly.

    A complete (all-pairs disequated) query is the worst case: every
    reordering opportunity exists, yet the planned query must keep the
    full disequality set, the atom multiset and the query type — and
    evaluate to identical polynomials.
    """

    def _diseq_heavy(self):
        return parse_query(
            "ans(x) :- R(x, y), R(y, z), S(x), "
            "x != y, x != z, y != z, x != 'a', y != 'a', z != 'a'"
        )

    def test_single_cq_structure_preserved(self):
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c", "d"], 9, seed=4)
        query = self._diseq_heavy()
        planned = plan_query(query, db)
        from repro.query.cq import ConjunctiveQuery

        assert isinstance(planned, ConjunctiveQuery)
        assert planned.disequalities == query.disequalities
        assert planned.head == query.head
        assert sorted(a.sort_key() for a in planned.atoms) == sorted(
            a.sort_key() for a in query.atoms
        )
        # Ordering invariance on the engine where order matters.
        assert evaluate_backtracking(planned, db) == evaluate_backtracking(
            query, db
        )

    def test_single_adjunct_union_stays_union(self):
        from repro.query.ucq import UnionQuery

        db = random_database({"R": 2, "S": 1}, ["a", "b"], 4, seed=0)
        union = UnionQuery([self._diseq_heavy()])
        planned = plan_query(union, db)
        assert isinstance(planned, UnionQuery)
        assert len(planned.adjuncts) == 1
        assert planned.adjuncts[0].disequalities == self._diseq_heavy().disequalities

    @pytest.mark.parametrize("seed", range(6))
    def test_planned_evaluation_identical_on_complete_queries(self, seed):
        query = random_cq(
            seed=seed, n_atoms=3, n_variables=3, diseq_probability=1.0
        )
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 7, seed=seed)
        assert evaluate_planned(query, db) == evaluate(query, db)


class TestProvenanceInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_planned_equals_unplanned(self, seed):
        query = random_cq(
            seed=seed, n_atoms=4, n_variables=4,
            diseq_probability=0.25 if seed % 2 else 0.0,
        )
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 6, seed=seed)
        assert evaluate_planned(query, db) == evaluate(query, db)

    def test_union_planning(self, fig1, db_table2):
        planned = plan_query(fig1.q_union, db_table2)
        assert evaluate(planned, db_table2) == evaluate(fig1.q_union, db_table2)

    def test_plan_query_preserves_type(self, fig1, db_table2):
        from repro.query.cq import ConjunctiveQuery
        from repro.query.ucq import UnionQuery

        assert isinstance(plan_query(fig1.q_conj, db_table2), ConjunctiveQuery)
        assert isinstance(plan_query(fig1.q_union, db_table2), UnionQuery)

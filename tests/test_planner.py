"""Tests for the greedy join-ordering planner."""

import pytest

from repro.db.generators import (
    chain_query,
    random_cq,
    random_database,
    uniform_binary_database,
)
from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import evaluate
from repro.engine.planner import evaluate_planned, order_atoms, plan_query
from repro.query.parser import parse_query


class TestOrdering:
    def test_connected_atom_follows_binding(self):
        db = AnnotatedDatabase.from_rows(
            {"Big": [("a", str(i)) for i in range(20)], "Small": [("a",)]}
        )
        query = parse_query("ans(x) :- Big(x, y), Small(x)")
        ordered = order_atoms(query, db)
        # The small relation should be scanned first.
        assert ordered.atoms[0].relation == "Small"

    def test_cartesian_product_deferred(self):
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", "b")], "S": [(str(i),) for i in range(10)]}
        )
        query = parse_query("ans(x) :- S(z), R(x, y), R(y, x)")
        ordered = order_atoms(query, db)
        # After R(x,y) is chosen, R(y,x) shares variables and should
        # precede the disconnected S(z).
        relations = [atom.relation for atom in ordered.atoms]
        assert relations.index("S") == 2

    def test_same_query_semantically(self):
        db = uniform_binary_database(4, density=0.6, seed=2)
        query = chain_query(3)
        ordered = order_atoms(query, db)
        assert ordered.head == query.head
        assert sorted(a.sort_key() for a in ordered.atoms) == sorted(
            a.sort_key() for a in query.atoms
        )
        assert ordered.disequalities == query.disequalities


class TestProvenanceInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_planned_equals_unplanned(self, seed):
        query = random_cq(
            seed=seed, n_atoms=4, n_variables=4,
            diseq_probability=0.25 if seed % 2 else 0.0,
        )
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 6, seed=seed)
        assert evaluate_planned(query, db) == evaluate(query, db)

    def test_union_planning(self, fig1, db_table2):
        planned = plan_query(fig1.q_union, db_table2)
        assert evaluate(planned, db_table2) == evaluate(fig1.q_union, db_table2)

    def test_plan_query_preserves_type(self, fig1, db_table2):
        from repro.query.cq import ConjunctiveQuery
        from repro.query.ucq import UnionQuery

        assert isinstance(plan_query(fig1.q_conj, db_table2), ConjunctiveQuery)
        assert isinstance(plan_query(fig1.q_union, db_table2), UnionQuery)

"""Unit tests for the backtracking evaluation engine (Defs. 2.6, 2.12)."""


from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import (
    assignments,
    evaluate,
    provenance,
    provenance_of_boolean,
    result_tuples,
)
from repro.query.parser import parse_query
from repro.semiring.polynomial import Monomial, Polynomial


class TestAssignments:
    def test_example_2_7(self, fig1, db_table2):
        """Figure 1 on Table 2: two assignments per adjunct."""
        assert len(list(assignments(fig1.q1, db_table2))) == 2
        assert len(list(assignments(fig1.q2, db_table2))) == 2

    def test_assignment_head_tuple(self, fig1, db_table2):
        heads = {a.head_tuple() for a in assignments(fig1.q2, db_table2)}
        assert heads == {("a",), ("b",)}

    def test_assignment_monomial_in_atom_order(self, fig1, db_table2):
        monomials = {
            a.monomial(db_table2)
            for a in assignments(fig1.q1, db_table2)
        }
        assert monomials == {Monomial(["s2", "s3"])}

    def test_disequality_filters_assignments(self, db_table2):
        with_diseq = parse_query("ans(x) :- R(x, y), x != y")
        without = parse_query("ans(x) :- R(x, y)")
        assert len(list(assignments(with_diseq, db_table2))) == 2
        assert len(list(assignments(without, db_table2))) == 4

    def test_constant_in_atom(self, db_table2):
        query = parse_query("ans(x) :- R(x, 'a')")
        heads = {a.head_tuple() for a in assignments(query, db_table2)}
        assert heads == {("a",), ("b",)}

    def test_diseq_against_constant(self, db_table2):
        query = parse_query("ans(x) :- R(x, x), x != 'a'")
        heads = {a.head_tuple() for a in assignments(query, db_table2)}
        assert heads == {("b",)}

    def test_binding_dict(self, db_table2):
        query = parse_query("ans(x) :- R(x, 'b'), x != 'b'")
        (assignment,) = list(assignments(query, db_table2))
        binding = assignment.binding_dict()
        assert list(binding.values()) == ["a"]


class TestEvaluate:
    def test_table3(self, fig1, db_table2):
        """Example 2.13: the Table 3 polynomials, literally."""
        result = evaluate(fig1.q_union, db_table2)
        assert result[("a",)] == Polynomial.parse("s2*s3 + s1")
        assert result[("b",)] == Polynomial.parse("s3*s2 + s4")

    def test_example_2_14(self, fig1, db_table2):
        """Qconj yields s2*s3 + s1*s1 for (a) and s3*s2 + s4*s4 for (b)."""
        result = evaluate(fig1.q_conj, db_table2)
        assert result[("a",)] == Polynomial.parse("s2*s3 + s1^2")
        assert result[("b",)] == Polynomial.parse("s3*s2 + s4^2")

    def test_empty_database(self, fig1):
        assert evaluate(fig1.q_union, AnnotatedDatabase()) == {}

    def test_self_join_squares_annotation(self):
        db = AnnotatedDatabase.from_rows({"R": [("a",)]})
        query = parse_query("ans() :- R(x), R(y)")
        assert provenance_of_boolean(query, db) == Polynomial.parse("s1^2")

    def test_provenance_of_absent_tuple_is_zero(self, fig1, db_table2):
        assert provenance(fig1.q_union, db_table2, ("zzz",)).is_zero()

    def test_result_tuples_sorted(self, fig1, db_table2):
        assert result_tuples(fig1.q_union, db_table2) == [("a",), ("b",)]

    def test_union_provenance_adds_adjuncts(self, db_table2):
        query = parse_query("ans(x) :- R(x, x)\nans(x) :- R(x, x)")
        result = evaluate(query, db_table2)
        assert result[("a",)] == Polynomial.parse("2*s1")

    def test_repeated_atom_repeats_factor(self, db_table2):
        query = parse_query("ans(x) :- R(x, x), R(x, x)")
        result = evaluate(query, db_table2)
        assert result[("a",)] == Polynomial.parse("s1^2")

    def test_cartesian_product(self):
        db = AnnotatedDatabase.from_rows({"R": [("a",)], "S": [("b",), ("c",)]})
        query = parse_query("ans(x, y) :- R(x), S(y)")
        result = evaluate(query, db)
        assert set(result) == {("a", "b"), ("a", "c")}

    def test_none_is_a_legitimate_domain_value(self):
        db = AnnotatedDatabase.from_rows({"R": [(None,), ("a",)]})
        query = parse_query("ans(x, y) :- R(x), R(y), x != y")
        result = evaluate(query, db)
        assert set(result) == {(None, "a"), ("a", None)}

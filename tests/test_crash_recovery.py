"""Crash-injection differential: SIGKILL a serving subprocess, recover,
compare bytes.

Each schedule boots ``repro-prov serve --data-dir`` in a subprocess,
drives a seeded mix of ``/update`` and ``/query`` traffic, kills the
process without warning — plain SIGKILL between requests, or a torn
WAL append injected via the ``REPRO_WAL_FAULT`` hook — then reboots on
the same directory and checks the recovered server against an
uninterrupted in-process oracle that applied the same update prefix:

* ``/query``, ``/batch`` and ``/views/*`` responses must be
  byte-identical to the oracle's;
* the recovered ``db_version`` must correspond to a *prefix* of the
  submitted updates (nothing is ever re-submitted after the crash).
"""

import json
import os
import random
import signal
import subprocess
import sys
from http.client import HTTPConnection

import pytest

from repro.cli import load_database, load_program
from repro.server.app import ServerState

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)

DATA = {
    "R": [
        {"row": ["a", "a"], "annotation": "s1"},
        {"row": ["a", "b"], "annotation": "s2"},
        {"row": ["b", "a"], "annotation": "s3"},
    ],
    "S": [
        {"row": ["a"], "annotation": "s4"},
        {"row": ["b"], "annotation": "s5"},
    ],
}

PROGRAM_TEXT = "V(x, z) :- R(x, y), R(y, z)\n" "W(x) :- V(x, z), S(z)\n"

QUERIES = [
    "ans(x, y) :- R(x, y)",
    "ans(x) :- R(x, y), S(y)",
    "ans(x) :- W(x)",
]

N_UPDATES = 10


# ----------------------------------------------------------------------
# Schedule generation (deterministic per seed)
# ----------------------------------------------------------------------
def build_updates(seed: int, n: int = N_UPDATES):
    """A seeded update sequence where every prefix is valid and every
    batch bumps the database version (no ambiguous no-ops)."""
    rng = random.Random(seed)
    # Rows we may delete/retag: start from the base facts, track
    # sequence-local inserts so earlier batches justify later ones.
    live = [("R", ("a", "a")), ("R", ("a", "b")), ("S", ("a",))]
    updates = []
    counter = 0
    for index in range(n):
        roll = rng.random()
        if roll < 0.6 or not live:
            relation = rng.choice(["R", "S"])
            counter += 1
            row = (
                ("n%d" % counter, "m%d" % counter)
                if relation == "R"
                else ("n%d" % counter,)
            )
            updates.append(
                {
                    "insert": {
                        relation: [
                            {
                                "row": list(row),
                                "annotation": "u%d" % counter,
                            }
                        ]
                    }
                }
            )
            live.append((relation, row))
        elif roll < 0.8:
            relation, row = live.pop(rng.randrange(len(live)))
            updates.append({"delete": {relation: [list(row)]}})
        else:
            relation, row = rng.choice(live)
            updates.append(
                {
                    "retag": {
                        relation: [
                            {
                                "row": list(row),
                                "annotation": "t%d.%d" % (seed, index),
                            }
                        ]
                    }
                }
            )
    return updates


# ----------------------------------------------------------------------
# Subprocess + HTTP plumbing
# ----------------------------------------------------------------------
def boot(data_file, program_file, data_dir, fault=None, snapshot_every=None):
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "-d",
        data_file,
        "-p",
        program_file,
        "--port",
        "0",
        "--data-dir",
        data_dir,
    ]
    if snapshot_every is not None:
        argv += ["--snapshot-every", str(snapshot_every)]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop("REPRO_WAL_FAULT", None)
    if fault is not None:
        env["REPRO_WAL_FAULT"] = fault
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    banner = process.stdout.readline()
    assert "listening on http://" in banner, banner
    host, port = banner.split("http://", 1)[1].split()[0].split(":")
    return process, host, int(port)


def request(host, port, method, path, payload=None):
    conn = HTTPConnection(host, port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def shutdown(process):
    if process.poll() is None:
        process.terminate()
    try:
        process.wait(timeout=30)
    finally:
        if process.stdout is not None:
            process.stdout.close()


# ----------------------------------------------------------------------
# The differential
# ----------------------------------------------------------------------
@pytest.fixture
def inputs(tmp_path):
    data_file = tmp_path / "data.json"
    data_file.write_text(json.dumps(DATA))
    program_file = tmp_path / "program.dl"
    program_file.write_text(PROGRAM_TEXT)
    data_dir = tmp_path / "durable"
    return str(data_file), str(program_file), str(data_dir)


def oracle_bytes(data_file, program_file, updates, target_version):
    """Replay updates on an uninterrupted in-process server until its
    version matches the recovered one; return its response bytes."""
    db = load_database(data_file)
    program = load_program(program_file)
    with ServerState(db, program=program) as state:
        applied = 0
        while state.stats()["db_version"] != target_version:
            assert applied < len(updates), (
                "recovered version %d is not any prefix of the submitted "
                "updates" % target_version
            )
            state.apply_update(updates[applied])
            applied += 1
        responses = {
            "queries": [state.run_query(text) for text in QUERIES],
            "batch": state.run_queries(QUERIES),
            "views": {
                name: state.read_view(name) for name in ("V", "W")
            },
            "base": state.read_view("V", base=True),
        }
    return applied, responses


def run_schedule(inputs, seed, fault=False, snapshot_every=None):
    data_file, program_file, data_dir = inputs
    rng = random.Random(1000 + seed)
    updates = build_updates(seed)
    kill_after = rng.randrange(0, len(updates) + 1)
    fault_spec = None
    if fault:
        # Tear the WAL frame of the update *at* the kill point: the
        # process fsyncs a partial record and dies inside append().
        kill_after = min(kill_after, len(updates) - 1)
        fault_spec = "%d:%d" % (kill_after, rng.randrange(0, 9))

    process, host, port = boot(
        data_file,
        program_file,
        data_dir,
        fault=fault_spec,
        snapshot_every=snapshot_every,
    )
    acknowledged = 0
    try:
        for index in range(kill_after):
            status, _ = request(
                host, port, "POST", "/update", updates[index]
            )
            assert status == 200
            acknowledged += 1
            if rng.random() < 0.4:
                request(
                    host,
                    port,
                    "POST",
                    "/query",
                    {"query": rng.choice(QUERIES)},
                )
        if fault_spec is not None:
            # This POST dies mid-append; any outcome but HTTP 200 is
            # acceptable (connection reset, empty reply...).
            try:
                status, _ = request(
                    host, port, "POST", "/update", updates[kill_after]
                )
                assert status != 200
            except OSError:
                pass
            process.wait(timeout=30)
            assert process.returncode == 17
        else:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
    finally:
        shutdown(process)

    # --- reboot on the same directory; never re-submit an update -----
    process, host, port = boot(data_file, program_file, data_dir)
    try:
        recovery_line = process.stdout.readline()
        assert "recovered version" in recovery_line, recovery_line
        status, stats = request(host, port, "GET", "/stats")
        assert status == 200
        version = json.loads(stats)["db_version"]
        applied, oracle = oracle_bytes(
            data_file, program_file, updates, version
        )
        # Every acknowledged update must survive; a logged-but-unacked
        # tail batch may add at most one more.
        assert acknowledged <= applied <= min(acknowledged + 1, len(updates))
        if fault_spec is not None:
            # The torn frame was truncated, not replayed.
            assert applied == acknowledged
        for text, expected in zip(QUERIES, oracle["queries"]):
            status, body = request(
                host, port, "POST", "/query", {"query": text}
            )
            assert status == 200 and body == expected
        status, body = request(
            host, port, "POST", "/batch", {"queries": QUERIES}
        )
        assert status == 200 and body == oracle["batch"]
        for name, expected in oracle["views"].items():
            status, body = request(host, port, "GET", "/views/" + name)
            assert status == 200 and body == expected
        status, body = request(host, port, "GET", "/views/V?base=1")
        assert status == 200 and body == oracle["base"]
    finally:
        shutdown(process)


class TestCrashRecoveryDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_sigkill_between_requests(self, inputs, seed):
        run_schedule(inputs, seed)

    @pytest.mark.parametrize("seed", range(12, 18))
    def test_torn_wal_append(self, inputs, seed):
        run_schedule(inputs, seed, fault=True)

    @pytest.mark.parametrize("seed", range(18, 22))
    def test_sigkill_across_rotation(self, inputs, seed):
        run_schedule(inputs, seed, snapshot_every=3)

    def test_double_crash_recovers_twice(self, inputs):
        """Crash, recover, crash again mid-WAL, recover again."""
        data_file, program_file, data_dir = inputs
        updates = build_updates(99)
        process, host, port = boot(data_file, program_file, data_dir)
        try:
            for update in updates[:3]:
                assert request(host, port, "POST", "/update", update)[0] == 200
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            shutdown(process)
        process, host, port = boot(
            data_file, program_file, data_dir, fault="0:4"
        )
        try:
            assert "recovered version" in process.stdout.readline()
            try:
                status, _ = request(
                    host, port, "POST", "/update", updates[3]
                )
                assert status != 200
            except OSError:
                pass
            process.wait(timeout=30)
            assert process.returncode == 17
        finally:
            shutdown(process)
        process, host, port = boot(data_file, program_file, data_dir)
        try:
            assert "recovered version" in process.stdout.readline()
            status, stats = request(host, port, "GET", "/stats")
            version = json.loads(stats)["db_version"]
            applied, oracle = oracle_bytes(
                data_file, program_file, updates, version
            )
            assert applied == 3
            status, body = request(
                host, port, "POST", "/query", {"query": QUERIES[0]}
            )
            assert status == 200 and body == oracle["queries"][0]
        finally:
            shutdown(process)

"""Unit and agreement tests for direct core-provenance computation."""

import pytest

from repro.db.generators import random_cq, random_database
from repro.db.instance import AnnotatedDatabase
from repro.direct.core_polynomial import core_monomials, core_polynomial_approx
from repro.direct.pipeline import core_provenance, core_provenance_table
from repro.direct.reconstruct import monomial_coefficient, reconstruct_adjunct
from repro.engine.evaluate import evaluate, provenance_of_boolean
from repro.errors import NotAbstractlyTaggedError, ReproError
from repro.hom.homomorphism import is_isomorphic
from repro.minimize.minprov import min_prov
from repro.paperdata.databases import example_5_steps_expected
from repro.query.parser import parse_query
from repro.query.terms import Constant
from repro.semiring.polynomial import Monomial, Polynomial


class TestCorePolynomialTransform:
    def test_example_5_8_support(self):
        p = Polynomial.parse("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
        assert [str(m) for m in core_monomials(p)] == ["s1", "s2*s4*s5"]

    def test_exponent_removal(self):
        p = Polynomial.parse("s1^5")
        assert core_monomials(p) == [Monomial(["s1"])]

    def test_equal_monomials_do_not_eliminate_each_other(self):
        p = Polynomial.parse("3*s1*s2")
        assert core_monomials(p) == [Monomial(["s1", "s2"])]

    def test_strict_containment_eliminates(self):
        p = Polynomial.parse("s1 + s1*s2")
        assert core_monomials(p) == [Monomial(["s1"])]

    def test_incomparable_monomials_all_kept(self):
        p = Polynomial.parse("s1*s2 + s2*s3 + s1*s3")
        assert len(core_monomials(p)) == 3

    def test_zero_polynomial(self):
        assert core_monomials(Polynomial.zero()) == []

    def test_approx_keeps_observed_counts(self):
        p = Polynomial.parse("s1^3 + 3*s1*s2*s3 + 3*s2*s4*s5")
        approx = core_polynomial_approx(p)
        assert approx == Polynomial.parse("s1 + 3*s2*s4*s5")

    def test_approx_merges_supports(self):
        p = Polynomial.parse("s1*s2 + s1^2*s2")
        assert core_polynomial_approx(p) == Polynomial.parse("2*s1*s2")


class TestReconstruction:
    def test_reconstructs_triangle_adjunct(self, db_table6):
        adjunct = reconstruct_adjunct(Monomial(["s2", "s4", "s5"]), db_table6, ())
        expected = parse_query(
            "ans() :- R(v1, v2), R(v2, v3), R(v3, v1), v1 != v2, v2 != v3, v1 != v3"
        )
        assert is_isomorphic(adjunct, expected)

    def test_reconstructs_reflexive_adjunct(self, db_table6):
        adjunct = reconstruct_adjunct(Monomial(["s1"]), db_table6, ())
        assert is_isomorphic(adjunct, parse_query("ans() :- R(v, v)"))

    def test_constants_preserved(self):
        db = AnnotatedDatabase.from_dict({"R": {("a", "b"): "s1"}})
        adjunct = reconstruct_adjunct(
            Monomial(["s1"]), db, ("b",), constants=[Constant("a")]
        )
        expected = parse_query("ans(v1) :- R('a', v1), v1 != 'a'")
        assert is_isomorphic(adjunct, expected)

    def test_rejects_nonlinear_monomial(self, db_table6):
        with pytest.raises(ReproError):
            reconstruct_adjunct(Monomial(["s1", "s1"]), db_table6, ())

    def test_coefficient_is_automorphism_count(self, db_table6):
        """Example 5.8: the 3-cycle adjunct has 3 automorphisms."""
        assert monomial_coefficient(Monomial(["s2", "s4", "s5"]), db_table6, ()) == 3
        assert monomial_coefficient(Monomial(["s1"]), db_table6, ()) == 1


class TestFullPipeline:
    def test_matches_example_5_8(self, qhat, db_table6):
        p = provenance_of_boolean(qhat, db_table6)
        core = core_provenance(p, db_table6, ())
        assert core == example_5_steps_expected()["step3"]

    def test_matches_rewrite_then_evaluate(self, qhat, db_table6):
        """Thm. 5.1 part 2: direct == P(t, MinProv(Q), D) exactly."""
        p = provenance_of_boolean(qhat, db_table6)
        direct = core_provenance(p, db_table6, ())
        rewritten = provenance_of_boolean(min_prov(qhat), db_table6)
        assert direct == rewritten

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_on_random_instances(self, seed):
        query = random_cq(seed=seed, n_atoms=2, n_variables=2, head_arity=1)
        db = random_database({"R": 2, "S": 1}, ["a", "b", "c"], 5, seed=seed)
        original = evaluate(query, db)
        minimal = evaluate(min_prov(query), db)
        for output, polynomial in original.items():
            direct = core_provenance(polynomial, db, output)
            assert direct == minimal[output], (query, output)

    def test_agreement_with_constants(self):
        query = parse_query("ans(x) :- R(x, y), R(y, 'a')")
        db = AnnotatedDatabase.from_rows(
            {"R": [("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")]}
        )
        original = evaluate(query, db)
        minimal = evaluate(min_prov(query), db)
        constants = query.constants()
        for output, polynomial in original.items():
            assert core_provenance(polynomial, db, output, constants) == minimal[output]

    def test_whole_table(self, fig1, db_table2):
        results = evaluate(fig1.q_conj, db_table2)
        core_table = core_provenance_table(results, db_table2)
        minimal_table = evaluate(min_prov(fig1.q_conj), db_table2)
        assert core_table == minimal_table

    def test_requires_abstract_tagging(self):
        """Thm. 6.2: refuse non-abstractly-tagged databases."""
        db = AnnotatedDatabase()
        db.add("R", ("a",), annotation="s")
        db.add("R", ("b",), annotation="s")
        with pytest.raises(NotAbstractlyTaggedError):
            core_provenance(Polynomial.parse("s^2"), db, ("a",))

"""Unit tests for polynomial specialization into semirings."""

import pytest

from repro.semiring.boolean import BooleanSemiring
from repro.semiring.evaluate import evaluate_polynomial
from repro.semiring.natural import NaturalSemiring
from repro.semiring.polynomial import Polynomial
from repro.semiring.security import Clearance, SecuritySemiring
from repro.semiring.tropical import TropicalSemiring


class TestEvaluate:
    def test_boolean_trust(self):
        p = Polynomial.parse("s1*s2 + s3")
        value = evaluate_polynomial(
            p, BooleanSemiring(), {"s1": True, "s2": True, "s3": False}
        )
        assert value is True

    def test_boolean_untrusted(self):
        p = Polynomial.parse("s1*s2")
        assert not evaluate_polynomial(
            p, BooleanSemiring(), {"s1": True, "s2": False}
        )

    def test_counting_with_coefficients_and_exponents(self):
        p = Polynomial.parse("2*s1^2 + s2")
        assert evaluate_polynomial(p, NaturalSemiring(), {"s1": 3, "s2": 5}) == 23

    def test_tropical_min_cost(self):
        p = Polynomial.parse("s1*s2 + s3")
        cost = evaluate_polynomial(
            p, TropicalSemiring(), {"s1": 1.0, "s2": 1.5, "s3": 4.0}
        )
        assert cost == 2.5

    def test_security_clearance(self):
        p = Polynomial.parse("s1*s2 + s3")
        level = evaluate_polynomial(
            p,
            SecuritySemiring(),
            {
                "s1": Clearance.TOP_SECRET,
                "s2": Clearance.PUBLIC,
                "s3": Clearance.SECRET,
            },
        )
        assert level == Clearance.SECRET

    def test_callable_valuation(self):
        p = Polynomial.parse("s1 + s2")
        assert evaluate_polynomial(p, NaturalSemiring(), lambda s: 1) == 2

    def test_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            evaluate_polynomial(Polynomial.parse("s1"), NaturalSemiring(), {})

    def test_zero_polynomial(self):
        assert evaluate_polynomial(Polynomial.zero(), NaturalSemiring(), {}) == 0

    def test_identity_specialization(self):
        """Evaluating with X -> X in N[X] is the identity (universality)."""
        from repro.semiring.polynomial import ProvenancePolynomialSemiring

        p = Polynomial.parse("2*s1^2*s2 + s3")
        value = evaluate_polynomial(
            p, ProvenancePolynomialSemiring(), Polynomial.variable
        )
        assert value == p

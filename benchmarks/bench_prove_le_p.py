"""Ablation: symbolic <=_P proof vs exhaustive database search.

The bounded search of Def. 2.17 examines hundreds of databases; the
symbolic prover (canonical cases + the Thm. 3.3 surjective-homomorphism
argument + bipartite matching) certifies the same positive claims from
the queries alone.  This bench compares their costs on the paper's
running example and checks they agree.
"""

from conftest import banner

from repro.order.query_order import bounded_le_p, prove_le_p
from repro.paperdata import figure1


def test_symbolic_proof(benchmark):
    fig = figure1()
    proved = benchmark(prove_le_p, fig.q_union, fig.q_conj)
    assert proved
    assert not prove_le_p(fig.q_conj, fig.q_union)
    banner("prove_le_p certifies Qunion <=_P Qconj symbolically")


def test_bounded_search_route(benchmark):
    fig = figure1()
    verdict = benchmark(
        bounded_le_p, fig.q_union, fig.q_conj, ("a", "b"), 3
    )
    assert verdict.holds
    banner(
        "bounded search agrees after {} databases (symbolic proof "
        "needed none)".format(verdict.databases_checked)
    )

"""Experiment E2.16 + matching ablation.

Regenerates Example 2.16 (``p1 < p2``) and quantifies the design choice
of exact Hopcroft-Karp matching over a greedy heuristic inside the
polynomial order: greedy is faster but incomplete — it misses valid
``p <= p'`` witnesses, which would make the order (and everything built
on it) unsound.
"""

import random

from conftest import banner

from repro.paperdata.figures import example_2_16_polynomials
from repro.semiring.order import polynomial_le, polynomial_lt
from repro.semiring.polynomial import Monomial, Polynomial
from repro.utils.matching import greedy_matching_size, maximum_matching_size

SYMBOLS = ["s1", "s2", "s3", "s4", "s5"]


def _random_polynomial(rng, n_monomials, max_degree):
    monomials = []
    for _ in range(n_monomials):
        degree = rng.randint(1, max_degree)
        monomials.append(Monomial(rng.choices(SYMBOLS, k=degree)))
    return Polynomial.from_monomials(monomials)


def test_example_2_16(benchmark):
    p1, p2 = example_2_16_polynomials()
    verdict = benchmark(polynomial_lt, p1, p2)
    assert verdict
    banner("Example 2.16 — p1 < p2 confirmed")
    print("  p1 =", p1)
    print("  p2 =", p2)


def test_order_scaling_on_random_polynomials(benchmark):
    rng = random.Random(42)
    pairs = []
    for _ in range(30):
        p = _random_polynomial(rng, 8, 4)
        q = p + _random_polynomial(rng, 4, 4)  # guarantees p <= q
        pairs.append((p, q))

    def check_all():
        return sum(1 for p, q in pairs if polynomial_le(p, q))

    positives = benchmark(check_all)
    assert positives == len(pairs)


def test_ablation_greedy_matching_is_incomplete(benchmark):
    """Count order decisions the greedy heuristic would get wrong."""
    rng = random.Random(7)
    cases = []
    for _ in range(200):
        n_right = rng.randint(1, 7)
        adjacency = [
            [v for v in range(n_right) if rng.random() < 0.45]
            for _ in range(rng.randint(1, 7))
        ]
        cases.append((adjacency, n_right))

    def count_mismatches():
        mismatches = 0
        for adjacency, n_right in cases:
            if greedy_matching_size(adjacency, n_right) != maximum_matching_size(
                adjacency, n_right
            ):
                mismatches += 1
        return mismatches

    mismatches = benchmark(count_mismatches)
    assert mismatches > 0, "greedy should be suboptimal on some instance"
    banner(
        "Ablation — greedy matching wrong on {}/200 random bipartite "
        "graphs (exact Hopcroft-Karp is required)".format(mismatches)
    )

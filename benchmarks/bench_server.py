"""Warm-cache serving vs cold evaluation on a 10k-tuple join.

The claim under test: the serving tier's hit path — canonical query
text to cached response bytes, via the version-keyed
:class:`~repro.server.cache.ResultCache` — beats cold engine evaluation
by at least 10x on a two-way join over 10,000 annotated tuples.  The
hit path re-parses the query text (request canonicalization is part of
serving) but skips planning, joining and encoding entirely; the cold
path is a fresh hash-join evaluation plus response encoding, which is
exactly what every miss (and every post-update first read) pays.

Timed for the JSON artifact (and the regression gate): the hit path,
the cold evaluation, and the full HTTP round-trip on a warm cache.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from conftest import banner

from repro.db.generators import random_database
from repro.server.app import ServerState, make_server

QUERY_TEXT = "ans(x, z) :- R(x, y), S(y, z)"
RELATIONS = {"R": 2, "S": 2}
DOMAIN = list(range(150))


def workload_db():
    """10k tuples split across the two join sides (bench_sharded's)."""
    db = random_database(RELATIONS, DOMAIN, n_facts=10_000, seed=31)
    assert db.fact_count() >= 10_000
    return db


@pytest.fixture(scope="module")
def state():
    with ServerState(workload_db(), engine="hashjoin") as server_state:
        server_state.run_query(QUERY_TEXT)  # warm: plan, cache entry
        yield server_state


def _best(operation, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def test_warm_cache_hit_beats_cold_evaluation_10x(state):
    """The acceptance criterion: cache hit >= 10x cold evaluation."""
    warm_body = state.run_query(QUERY_TEXT)

    def cold():
        state.cache.clear()
        return state.run_query(QUERY_TEXT)

    assert cold() == warm_body  # identical bytes either way
    cold_time = _best(cold, rounds=3)
    warm_time = _best(lambda: state.run_query(QUERY_TEXT))
    speedup = cold_time / warm_time
    banner(
        "10k-tuple join over HTTP state: warm hit {:.3f} ms vs cold "
        "{:.0f} ms -> {:.0f}x".format(warm_time * 1e3, cold_time * 1e3, speedup)
    )
    assert speedup >= 10.0, speedup


def test_server_cache_hit(benchmark, state):
    state.run_query(QUERY_TEXT)  # ensure the entry is present
    assert benchmark(state.run_query, QUERY_TEXT)


def test_server_cold_evaluation(benchmark, state):
    def cold():
        state.cache.clear()
        return state.run_query(QUERY_TEXT)

    assert benchmark(cold)


def _http_round_trip_warm(benchmark, server_mode):
    """The full stack on a warm cache: socket, HTTP parse, cached bytes."""
    server = make_server(
        workload_db(), engine="hashjoin", server_mode=server_mode
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    payload = json.dumps({"query": QUERY_TEXT})
    try:
        conn = HTTPConnection(host, port, timeout=60)

        def round_trip():
            conn.request("POST", "/query", body=payload)
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            return body

        round_trip()  # warm the cache (and the keep-alive connection)
        assert benchmark(round_trip)
        conn.close()
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


def test_server_http_round_trip_warm(benchmark):
    """The threaded tier's warm round-trip (one thread per connection)."""
    _http_round_trip_warm(benchmark, "threaded")


def test_server_http_round_trip_warm_async(benchmark):
    """The asyncio tier's warm round-trip: same request, event loop +
    loop-confined cache instead of a handler thread.  Medians must stay
    within the same order as the threaded tier — the event loop is a
    concurrency win, not a per-request tax."""
    _http_round_trip_warm(benchmark, "async")

"""Ablation: greedy join ordering in the backtracking engine.

A deliberately bad atom order (disconnected atom first) forces the
enumerator through a cartesian product; the planner restores a
connected order.  Polynomials are asserted identical — only wall-clock
differs.
"""

from conftest import banner

from repro.db.generators import uniform_binary_database
from repro.engine.evaluate import evaluate, evaluate_backtracking
from repro.engine.planner import evaluate_planned
from repro.query.parser import parse_query

# S(w) is disconnected from the join; putting it first multiplies the
# search space by |S| at the outermost loop.
BAD_ORDER = parse_query("ans(x) :- S(w), R(x, y), R(y, z), R(z, x)")


def _database():
    db = uniform_binary_database(7, density=0.5, seed=13)
    for i in range(30):
        db.add("S", ("k{}".format(i),))
    return db


def test_unplanned_bad_order(benchmark):
    # The backtracking engine on purpose: it is the only engine whose
    # cost depends on presentation order (the default hash-join engine
    # replans internally, which would erase the ablation).
    db = _database()
    result = benchmark(evaluate_backtracking, BAD_ORDER, db)
    assert result


def test_planned_order(benchmark):
    db = _database()
    result = benchmark(evaluate_planned, BAD_ORDER, db)
    assert result == evaluate(BAD_ORDER, db)
    banner("planner produces identical polynomials with a connected order")

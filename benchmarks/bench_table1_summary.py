"""Experiment T1: one empirical demonstration per row of Table 1.

Table 1 summarizes, per query class, where the standard-minimal and
p-minimal equivalents live and what they cost.  Each test regenerates
the evidence for one row:

* CQ≠  — standard minimal in CQ≠; NO p-minimal in-class; p-minimal in
         UCQ≠ (EXPTIME);
* CQ   — standard = p-minimal in-class; strictly terser in UCQ≠;
* cCQ≠ — standard = p-minimal = overall p-minimal, PTIME (timing series
         included to exhibit the polynomial scaling);
* UCQ≠ — p-minimal differs from standard-minimal; EXPTIME.
"""

import pytest

from conftest import banner

from repro.hom.containment import is_equivalent
from repro.minimize.minprov import is_p_minimal, min_prov
from repro.minimize.standard import minimize_complete, minimize_cq, minimize_ucq
from repro.order.query_order import compare_on_database
from repro.paperdata import figure1, figure2, table4_database, table5_database
from repro.query.atoms import Atom, Disequality
from repro.query.cq import ConjunctiveQuery
from repro.query.terms import Variable
from repro.semiring.order import Ordering


def test_row_cq_diseq_no_p_minimal_in_class(benchmark):
    """Row 1: CQ≠ — equivalent standard-minimal queries whose provenance
    is incomparable; the p-minimal equivalent lives in UCQ≠."""
    fig = figure2()
    d, dp = table4_database(), table5_database()

    def witness():
        return (
            compare_on_database(fig.q_no_pmin, fig.q_alt, d),
            compare_on_database(fig.q_no_pmin, fig.q_alt, dp),
            min_prov(fig.q_no_pmin),
        )

    on_d, on_dp, escaped = benchmark(witness)
    assert on_d is Ordering.GREATER and on_dp is Ordering.LESS
    assert is_equivalent(escaped, fig.q_no_pmin)
    assert is_p_minimal(escaped)
    banner(
        "Table 1 row CQ≠ — no in-class p-minimal; UCQ≠ escape has {} "
        "adjuncts".format(len(escaped.adjuncts))
    )


def test_row_cq_standard_equals_p_minimal_in_class(benchmark):
    """Row 2: CQ — Chandra-Merlin output is p-minimal within CQ, but
    UCQ≠ offers strictly terser provenance (Thm. 3.11)."""
    fig = figure1()

    def witness():
        core = minimize_cq(fig.q_conj)
        overall = min_prov(fig.q_conj)
        return core, overall

    core, overall = benchmark(witness)
    assert core == fig.q_conj          # already its own core
    assert not is_p_minimal(fig.q_conj)  # ...but not overall p-minimal
    assert is_p_minimal(overall)
    banner("Table 1 row CQ — core stays in CQ; overall p-minimal is a union")


def _complete_chain(length):
    """A complete chain query with duplicated atoms, size Θ(length)."""
    variables = [Variable("x{}".format(i)) for i in range(length + 1)]
    atoms = []
    for i in range(length):
        atom = Atom("R", (variables[i], variables[i + 1]))
        atoms.extend([atom, atom])  # duplicates for the minimizer
    disequalities = [
        Disequality(a, b)
        for i, a in enumerate(variables)
        for b in variables[i + 1:]
    ]
    return ConjunctiveQuery(Atom("ans", ()), atoms, disequalities)


@pytest.mark.parametrize("length", [4, 8, 16])
def test_row_ccq_diseq_ptime(benchmark, length):
    """Row 3: cCQ≠ — duplicate removal is overall p-minimization and
    scales polynomially (contrast with the Bell-number growth of the
    other rows)."""
    query = _complete_chain(length)
    minimal = benchmark(minimize_complete, query)
    assert minimal.size() == length
    assert not minimal.duplicate_atom_indices()


def test_row_ucq_diseq_p_minimal_differs_from_standard(benchmark):
    """Row 4: UCQ≠ — standard union minimization and MinProv disagree:
    standard minimization keeps the CQ adjunct that absorbs the others,
    MinProv splits it into disjoint complete cases."""
    fig = figure1()
    union = fig.q_union.union(fig.q_conj)  # Qconj absorbs Q1 and Q2

    def both():
        return minimize_ucq(union), min_prov(union)

    standard, p_minimal = benchmark(both)
    assert len(standard.adjuncts) == 1          # Qconj swallows the rest
    assert standard.adjuncts[0] == fig.q_conj
    assert len(p_minimal.adjuncts) == 2          # the two complete cases
    assert is_p_minimal(p_minimal)
    assert not is_p_minimal(standard)
    banner(
        "Table 1 row UCQ≠ — standard minimal: {} adjunct(s); "
        "p-minimal: {} adjunct(s)".format(
            len(standard.adjuncts), len(p_minimal.adjuncts)
        )
    )

"""Incremental maintenance vs full re-evaluation across update-batch sizes.

The claim under test: once provenance polynomials are materialized,
serving a base update costs time proportional to the *delta*, not to
the database — a single-tuple change against a ≥ 1k-tuple database must
beat full re-evaluation by at least 5x (it typically wins by orders of
magnitude thanks to the pivot-decomposed delta join over hash indexes).
"""

import time

import pytest

from conftest import banner

from repro.db.generators import uniform_binary_database
from repro.incremental.delta import Delta
from repro.incremental.maintain import check_consistency
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program
from repro.views.program import evaluate_program

PROGRAM = parse_program("V(x, z) :- R(x, y), R(y, z)")

BATCH_SIZES = (1, 4, 16)


def big_database():
    db = uniform_binary_database(34, density=0.9, seed=7)
    assert db.fact_count() >= 1000, db.fact_count()
    return db


@pytest.fixture(scope="module")
def graph_db():
    return big_database()


@pytest.fixture(scope="module")
def registry(graph_db):
    return ViewRegistry(PROGRAM, graph_db)


def fresh_rows(db, count):
    """Rows absent from the database, deterministic."""
    rows = []
    for index in range(count):
        row = ("n{}".format(index), "v{}".format(index % 34))
        assert not db.contains("R", row)
        rows.append(row)
    return rows


def test_full_recompute(benchmark, graph_db):
    result = benchmark(evaluate_program, PROGRAM, graph_db)
    assert result.views["V"].results


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_incremental_batch(benchmark, registry, graph_db, batch_size):
    rows = fresh_rows(graph_db, batch_size)
    insert = Delta(inserts=[("R", row) for row in rows])
    delete = Delta(deletes=[("R", row) for row in rows])

    def round_trip():
        registry.apply(insert)
        registry.apply(delete)

    benchmark(round_trip)


def test_single_tuple_delta_beats_recompute_5x(graph_db):
    """The acceptance criterion: >= 5x on single-tuple deltas, >= 1k tuples."""
    registry = ViewRegistry(PROGRAM, graph_db)
    row = ("probe", "v0")
    insert = Delta(inserts=[("R", row)])
    delete = Delta(deletes=[("R", row)])

    registry.apply(insert)  # warm the hash indexes
    registry.apply(delete)

    start = time.perf_counter()
    rounds = 5
    for _ in range(rounds):
        registry.apply(insert)
        registry.apply(delete)
    incremental = (time.perf_counter() - start) / (2 * rounds)

    start = time.perf_counter()
    evaluate_program(PROGRAM, graph_db)
    recompute = time.perf_counter() - start

    speedup = recompute / incremental
    banner(
        "Incremental single-tuple delta: {:.3f} ms vs full recompute "
        "{:.1f} ms — {:.0f}x".format(incremental * 1e3, recompute * 1e3, speedup)
    )
    assert speedup >= 5.0, speedup


def test_maintained_state_matches_recompute(graph_db):
    registry = ViewRegistry(PROGRAM, graph_db)
    rows = fresh_rows(graph_db, 8)
    registry.apply(Delta(inserts=[("R", row) for row in rows]))
    registry.apply(Delta(deletes=[("R", row) for row in rows[:4]]))
    audit = check_consistency(registry)
    assert audit.consistent, audit.mismatches[:3]

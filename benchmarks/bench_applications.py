"""Application experiment: core provenance as compact tool input.

The paper's introduction motivates core provenance as a smaller input
to provenance consumers.  This bench quantifies that on a synthetic
view: (i) absorptive analyses (trust, cheapest cost, clearance) answer
identically on core and full provenance; (ii) the core is never larger,
and strictly smaller whenever derivations repeat tuples or contain one
another.
"""

from conftest import banner

from repro.apps.clearance import required_clearance
from repro.apps.cost import derivation_cost
from repro.apps.trust import is_trusted
from repro.db.generators import uniform_binary_database
from repro.direct.pipeline import core_provenance_table
from repro.engine.evaluate import evaluate
from repro.query.parser import parse_query
from repro.semiring.security import Clearance


def _view_and_core():
    db = uniform_binary_database(6, density=0.5, seed=21)
    query = parse_query("ans(x) :- R(x, y), R(y, x)")
    view = evaluate(query, db)
    core = core_provenance_table(view, db)
    return db, view, core


def test_size_reduction(benchmark):
    def measure():
        _, view, core = _view_and_core()
        full_size = sum(
            sum(m.degree for m in p.expanded()) for p in view.values()
        )
        core_size = sum(
            sum(m.degree for m in p.expanded()) for p in core.values()
        )
        return full_size, core_size

    full_size, core_size = benchmark(measure)
    assert core_size <= full_size
    assert core_size < full_size  # self-joins repeat tuples on loops
    banner(
        "Provenance size (total monomial factors): full={} core={} "
        "({:.0%} of full)".format(full_size, core_size, core_size / full_size)
    )


def test_absorptive_analyses_agree(benchmark):
    db, view, core = _view_and_core()
    symbols = sorted(db.annotations())
    trusted = set(symbols[::2])
    levels = {
        s: list(Clearance)[i % 4] for i, s in enumerate(symbols)
    }

    def check_all():
        disagreements = 0
        for output in view:
            if is_trusted(view[output], trusted) != is_trusted(
                core[output], trusted
            ):
                disagreements += 1
            if required_clearance(view[output], levels) != required_clearance(
                core[output], levels
            ):
                disagreements += 1
        return disagreements

    disagreements = benchmark(check_all)
    assert disagreements == 0
    banner("Trust and clearance identical on core vs full provenance")


def test_cost_analysis_on_core(benchmark):
    db, view, core = _view_and_core()
    symbols = sorted(db.annotations())
    costs = {s: 1.0 for s in symbols}

    def cheapest_everywhere():
        return {output: derivation_cost(core[output], costs) for output in core}

    cheap = benchmark(cheapest_everywhere)
    # With unit costs, the cheapest core derivation of a round-trip
    # tuple uses 1 tuple (a loop) or 2 (a genuine round trip).
    assert set(cheap.values()) <= {1.0, 2.0}

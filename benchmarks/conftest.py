"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a table, a
figure, or a theorem's witness), asserts the paper's qualitative claim,
and times the operation that produces it.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated artifacts printed next to the paper's
values (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations


def banner(title: str) -> None:
    """Print a section banner (visible with ``-s``)."""
    print("\n" + "=" * 68)
    print(title)
    print("=" * 68)


def show_polynomials(rows) -> None:
    """Print ``(label, polynomial)`` pairs aligned."""
    for label, polynomial in rows:
        print("  {:<28} {}".format(str(label), polynomial))

"""Warm recovery (snapshot + WAL replay) vs cold boot-and-recompute.

The claim under test: rebooting a durable server — decode the latest
RPSN snapshot, replay the WAL tail — is at least 5x faster than the
recompute a non-durable server pays on the same workload, because the
snapshot bounds recovery cost by the *state* size while the recompute
pays for the whole update *history*.  The workload is the repo's
standard 10k-tuple two-way join fronted by one join view, aged by a
600-batch seeded update history (70% inserts, 15% deletes, 15%
retags), with a 20-batch WAL tail past the last checkpoint.

Timed for the JSON artifact (and the regression gate): the cold
recompute (JSON-decode the base facts, materialize the view, re-apply
all 620 batches) and the snapshot+WAL recovery.
"""

import json
import random
import shutil
import tempfile
import time

import pytest

from conftest import banner

from repro.config import EngineConfig
from repro.db.generators import random_database
from repro.durability import DurableStore
from repro.incremental.delta import Delta
from repro.incremental.registry import ViewRegistry
from repro.io import database_from_dict, database_to_dict, delta_to_dict
from repro.query.parser import parse_query

RELATIONS = {"R": 2, "S": 2}
DOMAIN = list(range(3000))
PROGRAM = {"V": parse_query("V(x, z) :- R(x, y), S(y, z)")}
CONFIG = EngineConfig(engine="hashjoin")
N_HISTORY = 600
N_TAIL = 20


def workload_db():
    """10k tuples split across the two join sides (bench_server's
    generator, over a wider domain so the join stays selective)."""
    db = random_database(RELATIONS, DOMAIN, n_facts=10_000, seed=31)
    assert db.fact_count() >= 10_000
    return db


def build_history(db, n, seed=7):
    """A seeded update history where every batch is applicable: deletes
    and retags only target rows inserted earlier in the history."""
    rng = random.Random(seed)
    present = {(name, row) for name, row, _ in db.all_facts()}
    live = []
    deltas = []
    counter = 0
    for index in range(n):
        roll = rng.random()
        if roll < 0.70 or not live:
            relation = "R" if rng.random() < 0.5 else "S"
            while True:
                row = (rng.choice(DOMAIN), rng.choice(DOMAIN))
                if (relation, row) not in present:
                    break
            present.add((relation, row))
            counter += 1
            deltas.append(
                Delta(inserts=[(relation, row, "h%d" % counter)])
            )
            live.append((relation, row))
        elif roll < 0.85:
            relation, row = live.pop(rng.randrange(len(live)))
            present.discard((relation, row))
            deltas.append(Delta(deletes=[(relation, row)]))
        else:
            relation, row = rng.choice(live)
            deltas.append(
                Delta(retags=[(relation, row, "t%d" % index)])
            )
    return deltas


@pytest.fixture(scope="module")
def workload():
    """The durable directory a killed server leaves behind — snapshot
    taken after the 600-batch history, 20-record WAL tail — plus the
    JSON artifacts a cold reboot starts from."""
    db = workload_db()
    payload = json.dumps(database_to_dict(db))
    history = build_history(db, N_HISTORY + N_TAIL)
    directory = tempfile.mkdtemp(prefix="bench-recovery-")
    registry = ViewRegistry(PROGRAM, db, config=CONFIG)
    with DurableStore(directory) as store:
        for delta in history[:N_HISTORY]:
            registry.apply(delta)
        store.snapshot(registry.serving_db, registry)
        for delta in history[N_HISTORY:]:
            store.log_update(delta_to_dict(delta))
            registry.apply(delta)
    yield directory, payload, history
    shutil.rmtree(directory, ignore_errors=True)


def cold_recompute(payload, history):
    """What a non-durable reboot costs: decode the base facts, fully
    materialize the view program, re-apply the entire update history."""
    db = database_from_dict(json.loads(payload))
    registry = ViewRegistry(PROGRAM, db, config=CONFIG)
    for delta in history:
        registry.apply(delta)
    return registry


def warm_recovery(directory):
    with DurableStore(directory) as store:
        return store.recover(program=PROGRAM, config=CONFIG)


def _best(operation, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def test_replay_beats_recompute_5x(workload):
    """The acceptance criterion: snapshot+WAL recovery >= 5x faster."""
    directory, payload, history = workload
    recovered = warm_recovery(directory)
    oracle = cold_recompute(payload, history)
    assert recovered.replayed == N_TAIL
    assert recovered.registry.db_version() == oracle.db_version()
    assert sorted(
        recovered.registry.serving_db.all_facts(), key=repr
    ) == sorted(oracle.serving_db.all_facts(), key=repr)
    assert recovered.registry.view("V") == oracle.view("V")
    cold_time = _best(lambda: cold_recompute(payload, history), rounds=3)
    warm_time = _best(lambda: warm_recovery(directory), rounds=3)
    speedup = cold_time / warm_time
    banner(
        "reboot after {} updates: snapshot+WAL {:.0f} ms vs recompute "
        "{:.0f} ms -> {:.1f}x".format(
            len(history), warm_time * 1e3, cold_time * 1e3, speedup
        )
    )
    assert speedup >= 5.0, speedup


def test_cold_boot_recompute(benchmark, workload):
    directory, payload, history = workload
    assert benchmark(cold_recompute, payload, history)


def test_snapshot_wal_recovery(benchmark, workload):
    directory, payload, history = workload
    assert benchmark(warm_recovery, directory)

"""Experiment T4/T5+F2: the Thm. 3.5 non-existence construction.

Paper claim (Lemmas 3.6-3.7): ``QnoPmin`` and ``Qalt`` are equivalent
standard-minimal queries whose provenance orders *oppositely* on the
Table 4 and Table 5 databases — hence no p-minimal equivalent exists in
CQ≠.  The polynomials are reproduced literally.
"""

from conftest import banner, show_polynomials

from repro.engine.evaluate import provenance_of_boolean
from repro.hom.containment import is_equivalent
from repro.order.query_order import compare_on_database
from repro.paperdata import (
    figure2,
    lemma_3_6_expected,
    table4_database,
    table5_database,
)
from repro.semiring.order import Ordering


def test_lemma_3_6_polynomials_on_d(benchmark):
    fig = figure2()
    db = table4_database()
    p_no_pmin = benchmark(provenance_of_boolean, fig.q_no_pmin, db)
    p_alt = provenance_of_boolean(fig.q_alt, db)
    expected = lemma_3_6_expected()
    assert p_no_pmin == expected["q_no_pmin_on_d"]
    assert p_alt == expected["q_alt_on_d"]
    banner("Lemma 3.6 on D (Table 4) — paper: 2(s1)^2(s2)^2 s3 s0 + s1 s2 (s3)^3 s0")
    show_polynomials([("QnoPmin", p_no_pmin), ("Qalt", p_alt)])


def test_lemma_3_6_polynomials_on_d_prime(benchmark):
    fig = figure2()
    db = table5_database()
    p_no_pmin = provenance_of_boolean(fig.q_no_pmin, db)
    p_alt = benchmark(provenance_of_boolean, fig.q_alt, db)
    expected = lemma_3_6_expected()
    assert p_no_pmin == expected["q_no_pmin_on_dp"]
    assert p_alt == expected["q_alt_on_dp"]
    banner("Lemma 3.6 on D' (Table 5) — Qalt is now strictly larger")
    show_polynomials([("QnoPmin", p_no_pmin), ("Qalt", p_alt)])


def test_theorem_3_5_opposite_orders(benchmark):
    fig = figure2()
    d, d_prime = table4_database(), table5_database()

    def compare_both():
        return (
            compare_on_database(fig.q_no_pmin, fig.q_alt, d),
            compare_on_database(fig.q_no_pmin, fig.q_alt, d_prime),
        )

    on_d, on_dp = benchmark(compare_both)
    assert is_equivalent(fig.q_no_pmin, fig.q_alt)
    assert on_d is Ordering.GREATER
    assert on_dp is Ordering.LESS
    banner(
        "Thm. 3.5 — equivalent queries, opposite provenance orders: "
        "D: {}, D': {}".format(on_d.value, on_dp.value)
    )

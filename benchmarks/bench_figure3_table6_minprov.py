"""Experiment T6+F3: MinProv step by step on Q̂ (Figure 3, Examples
4.7 / 5.2 / 5.4 / 5.8 on the Table 6 database).

Paper claim: Q̂I has five adjuncts; step II minimizes Q̂1 to
``R(v1, v1)``; step III leaves ``Q̂min1 ∪ Q̂5``; the provenance on D̂
shrinks from 7 monomial occurrences to ``s1 + 3*s2*s4*s5``.
"""

from conftest import banner, show_polynomials

from repro.engine.evaluate import provenance_of_boolean
from repro.hom.homomorphism import is_isomorphic
from repro.minimize.minprov import min_prov_trace
from repro.paperdata import figure3_expected_steps, figure3_qhat, table6_database
from repro.paperdata.databases import example_5_steps_expected


def test_minprov_trace_structure(benchmark):
    q_hat = figure3_qhat()
    trace = benchmark(min_prov_trace, q_hat)
    expected = figure3_expected_steps()
    assert len(trace.step1.adjuncts) == 5
    assert len(trace.step3.adjuncts) == 2
    for adjunct in trace.step3.adjuncts:
        assert any(
            is_isomorphic(adjunct, target)
            for target in expected["QIII"].adjuncts
        )
    banner("Figure 3 — MinProv(Q̂) steps")
    for label, step in (("QI", trace.step1), ("QII", trace.step2), ("QIII", trace.step3)):
        print("{} ({} adjuncts)".format(label, len(step.adjuncts)))
        for adjunct in step.adjuncts:
            print("   ", adjunct)


def test_examples_5_2_to_5_8_provenance(benchmark):
    q_hat = figure3_qhat()
    db = table6_database()
    trace = min_prov_trace(q_hat)
    expected = example_5_steps_expected()

    def provenance_per_step():
        return {
            "step1": provenance_of_boolean(trace.step1, db),
            "step2": provenance_of_boolean(trace.step2, db),
            "step3": provenance_of_boolean(trace.step3, db),
        }

    polynomials = benchmark(provenance_per_step)
    assert polynomials == expected
    banner("Examples 5.2 / 5.4 / 5.8 — provenance after each MinProv step")
    show_polynomials(sorted(polynomials.items()))

"""Experiment T6.2: general (non-abstractly-tagged) annotations.

Paper claims (Sec. 6): p-minimal queries keep dominating on databases
with repeated annotations (Thm. 6.1), but direct core computation from
the polynomial alone becomes impossible (Thm. 6.2) — two non-equivalent
queries can share both the polynomial and the constants while their
cores differ.
"""

import pytest

from conftest import banner

from repro.engine.evaluate import evaluate
from repro.errors import NotAbstractlyTaggedError
from repro.direct.pipeline import core_provenance
from repro.hom.containment import is_equivalent
from repro.minimize.minprov import min_prov
from repro.paperdata import figure1, theorem_6_2_instance
from repro.db.instance import AnnotatedDatabase
from repro.semiring.order import polynomial_le
from repro.semiring.polynomial import Polynomial


def test_theorem_6_1_order_survives_retagging(benchmark):
    fig = figure1()
    db = AnnotatedDatabase()
    db.add("R", ("a", "a"), annotation="s")
    db.add("R", ("a", "b"), annotation="s")
    db.add("R", ("b", "a"), annotation="t")
    db.add("R", ("b", "b"), annotation="t")
    assert not db.is_abstractly_tagged()

    def dominated_everywhere():
        union = evaluate(fig.q_union, db)
        conj = evaluate(fig.q_conj, db)
        return all(
            polynomial_le(union[output], conj[output]) for output in union
        )

    assert benchmark(dominated_everywhere)
    banner("Thm. 6.1 — Qunion still dominates Qconj with repeated tags")


def test_theorem_6_2_counterexample(benchmark):
    instance = theorem_6_2_instance()

    def witness():
        p = evaluate(instance.q, instance.db)[instance.output]
        p_prime = evaluate(instance.q_prime, instance.db)[instance.output]
        core_q = evaluate(min_prov(instance.q), instance.db)[instance.output]
        core_qp = evaluate(min_prov(instance.q_prime), instance.db)[
            instance.output
        ]
        return p, p_prime, core_q, core_qp

    p, p_prime, core_q, core_qp = benchmark(witness)
    assert not is_equivalent(instance.q, instance.q_prime)
    assert p == p_prime == Polynomial.parse("s^2")
    assert core_q != core_qp
    banner(
        "Thm. 6.2 — same polynomial ({}), different cores ({} vs {}): "
        "no query-free core computation exists".format(p, core_q, core_qp)
    )
    with pytest.raises(NotAbstractlyTaggedError):
        core_provenance(p, instance.db, instance.output)

"""Experiment T4.10: the exponential size of p-minimal equivalents.

Paper claim (Thm. 4.10): the family ``Qn`` with ``2n`` atoms over
``R1..Rn`` has p-minimal equivalents of size ``2^Ω(n)``.  We regenerate
the size series — input atoms Θ(n), canonical cases B(2n), surviving
adjuncts growing exponentially — and time MinProv.
"""

from conftest import banner

from repro.minimize.canonical import possible_completions
from repro.minimize.minprov import min_prov
from repro.paperdata import theorem_4_10_query
from repro.utils.partitions import bell_number


def _series(max_n):
    rows = []
    for n in range(1, max_n + 1):
        query = theorem_4_10_query(n)
        cases = len(possible_completions(query))
        adjuncts = len(min_prov(query).adjuncts)
        rows.append((n, query.size(), cases, adjuncts))
    return rows


def test_blowup_series(benchmark):
    rows = benchmark(_series, 3)
    banner("Thm. 4.10 — size of the p-minimal equivalent of Qn")
    print("  {:>3} {:>12} {:>16} {:>18}".format(
        "n", "input atoms", "canonical cases", "p-minimal adjuncts"
    ))
    previous = 0
    for n, size, cases, adjuncts in rows:
        print("  {:>3} {:>12} {:>16} {:>18}".format(n, size, cases, adjuncts))
        assert size == 2 * n
        assert cases == bell_number(2 * n)
        assert adjuncts >= 2 ** n
        assert adjuncts > previous
        previous = adjuncts


def test_minprov_cost_at_n2(benchmark):
    query = theorem_4_10_query(2)
    result = benchmark(min_prov, query)
    assert len(result.adjuncts) >= 4


def test_minprov_cost_at_n3(benchmark):
    query = theorem_4_10_query(3)
    result = benchmark(min_prov, query)
    assert len(result.adjuncts) >= 8

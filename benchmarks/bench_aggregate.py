"""Aggregate provenance: annotation cost and specialization payoff.

The claims under test: (1) both engines produce identical semimodule
annotations on a join-aggregate workload; (2) once the annotation is
cached, answering a what-if deletion (specialize the tensors) beats
re-evaluating the aggregate on the modified database by at least 3x —
the paper's "compute once, specialize per application" economics; and
(3) the incremental registry serves single-tuple updates to an
aggregate view far cheaper than re-aggregation.
"""

import time

import pytest

from conftest import banner

from repro.aggregate import (
    aggregate_table,
    evaluate_aggregate,
    propagate_deletion_aggregates,
)
from repro.db.generators import random_database
from repro.db.instance import AnnotatedDatabase
from repro.db.sqlite_backend import SQLiteDatabase
from repro.incremental.delta import Delta
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program, parse_query

QUERY = parse_query("agg(x, sum(v), min(v), count(*)) :- R(x, y), S(y, v)")

RELATIONS = {"R": 2, "S": 2}
DOMAIN = list(range(18))


def workload_db():
    db = random_database(RELATIONS, DOMAIN, n_facts=520, seed=11)
    assert db.fact_count() >= 500
    return db


@pytest.fixture(scope="module")
def db():
    return workload_db()


@pytest.fixture(scope="module")
def annotated(db):
    return evaluate_aggregate(QUERY, db)


def test_annotate_in_memory(benchmark, db):
    results = benchmark(evaluate_aggregate, QUERY, db)
    assert results


def test_annotate_via_sqlite(benchmark, db, annotated):
    store = SQLiteDatabase.from_annotated(db)

    def run():
        return store.evaluate_aggregate(QUERY)

    results = benchmark(run)
    store.close()
    assert results == annotated  # engine agreement on the workload


def test_plain_aggregate_baseline(benchmark, db):
    table = benchmark(aggregate_table, QUERY, db)
    assert table


def test_specialize_deletion(benchmark, db, annotated):
    doomed = sorted(db.annotations())[:5]
    benchmark(propagate_deletion_aggregates, annotated, doomed)


def test_specialization_beats_reevaluation_3x(db, annotated):
    """The acceptance criterion: cached-annotation what-ifs >= 3x."""
    doomed = set(sorted(db.annotations())[:5])

    def without(db, doomed):
        copy = AnnotatedDatabase()
        for relation in sorted(db.relations()):
            copy.declare_relation(relation, db.arity(relation))
        for relation, row, annotation in db.all_facts():
            if annotation not in doomed:
                copy.add(relation, row, annotation=annotation)
        return copy

    valuation = {
        symbol: (0 if symbol in doomed else 1)
        for symbol in db.annotations()
    }
    # Min-of-rounds on both sides: robust against scheduler noise on
    # shared CI runners (the mean is hostage to one bad quantum).
    rounds = 5
    cache_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        specialized = {}
        for group, result in annotated.items():
            values = result.specialize(valuation)
            if values is not None:
                specialized[group] = values
        cache_times.append(time.perf_counter() - start)
    from_cache = min(cache_times)

    eval_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        reference = aggregate_table(QUERY, without(db, doomed))
        eval_times.append(time.perf_counter() - start)
    re_evaluated = min(eval_times)

    assert specialized == reference  # same answer ...
    speedup = re_evaluated / from_cache
    banner(
        "what-if deletion: {:.0f}x faster from cached annotations "
        "({:.3f} ms vs {:.3f} ms)".format(
            speedup, from_cache * 1e3, re_evaluated * 1e3
        )
    )
    assert speedup >= 3.0, speedup


def test_incremental_aggregate_update(benchmark, db):
    registry = ViewRegistry(
        parse_program("agg(x, sum(v), count(*)) :- R(x, y), S(y, v)"), db
    )
    row = ("probe", 0)
    insert = Delta(inserts=[("R", row)])
    delete = Delta(deletes=[("R", row)])
    registry.apply(insert)  # warm the hash indexes
    registry.apply(delete)

    def round_trip():
        registry.apply(insert)
        registry.apply(delete)

    benchmark(round_trip)

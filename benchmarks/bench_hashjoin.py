"""Hash-join engine vs backtracking on a 1k-tuple join workload.

The claims under test: (1) on a two-way join over ~1000 annotated
tuples the set-at-a-time hash-join engine beats the backtracking
enumerator by at least 3x while producing *identical* provenance
polynomials; (2) the cardinality-banded plan cache makes repeated
evaluation plan-free; (3) interned monomial arithmetic keeps the
aggregate path ahead of assignment-at-a-time folding too.
"""

import time

import pytest

from conftest import banner

from repro.aggregate.evaluate import evaluate_aggregate
from repro.db.generators import random_database
from repro.engine.evaluate import evaluate_backtracking
from repro.engine.hashjoin import default_plan_cache, evaluate_hashjoin
from repro.query.parser import parse_query

QUERY = parse_query("ans(x, z) :- R(x, y), S(y, z)")
AGG_QUERY = parse_query("agg(x, sum(z), count(*)) :- R(x, y), S(y, z)")

RELATIONS = {"R": 2, "S": 2}
DOMAIN = list(range(40))


def workload_db():
    """~1000 tuples split across the two join sides."""
    db = random_database(RELATIONS, DOMAIN, n_facts=1000, seed=23)
    assert db.fact_count() >= 1000
    return db


@pytest.fixture(scope="module")
def db():
    return workload_db()


def test_hashjoin_engine(benchmark, db):
    result = benchmark(evaluate_hashjoin, QUERY, db)
    assert result


def test_backtracking_engine(benchmark, db):
    result = benchmark(evaluate_backtracking, QUERY, db)
    assert result


def test_hashjoin_aggregate(benchmark, db):
    result = benchmark(evaluate_aggregate, AGG_QUERY, db)
    assert result


def test_backtracking_aggregate(benchmark, db):
    # The assignment-at-a-time counterpart of the timing above — the
    # pair backs the "interned arithmetic keeps the aggregate path
    # ahead" claim in the module docstring.
    result = benchmark(evaluate_aggregate, AGG_QUERY, db, "backtrack")
    assert result == evaluate_aggregate(AGG_QUERY, db)


def test_hashjoin_beats_backtracking_3x(db):
    """The acceptance criterion: >= 3x on the 1k-tuple join workload,
    with polynomial-identical results."""
    rounds = 3
    # Warm the plan cache and the intern table once, as a refresh loop
    # would; timings below measure steady-state evaluation.
    hashed = evaluate_hashjoin(QUERY, db)

    hash_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        hashed = evaluate_hashjoin(QUERY, db)
        hash_times.append(time.perf_counter() - start)
    set_at_a_time = min(hash_times)

    backtrack_times = []
    for _ in range(rounds):
        start = time.perf_counter()
        reference = evaluate_backtracking(QUERY, db)
        backtrack_times.append(time.perf_counter() - start)
    tuple_at_a_time = min(backtrack_times)

    assert hashed == reference  # identical polynomials ...
    speedup = tuple_at_a_time / set_at_a_time
    banner(
        "1k-tuple join: hash join {:.0f}x faster than backtracking "
        "({:.2f} ms vs {:.2f} ms), plan cache {}".format(
            speedup,
            set_at_a_time * 1e3,
            tuple_at_a_time * 1e3,
            default_plan_cache(),
        )
    )
    assert speedup >= 3.0, speedup  # ... at least 3x faster

"""Ablation: backtracking vs SQLite-compiled vs hash-join engines.

All engines compute identical annotated results (asserted here); the
bench compares their cost across the classic join shapes.  The paper's
narrative — provenance capture can ride on a standard SQL engine —
corresponds to the SQLite route.
"""

import pytest

from conftest import banner

from repro.db.generators import chain_query, star_query, uniform_binary_database
from repro.db.sqlite_backend import SQLiteDatabase
from repro.engine.evaluate import evaluate, evaluate_backtracking
from repro.engine.hashjoin import evaluate_hashjoin
from repro.query.parser import parse_query

WORKLOADS = {
    "chain3": chain_query(3),
    "star3": star_query(3),
    "round_trip_diseq": parse_query("ans(x) :- R(x, y), R(y, x), x != y"),
}


@pytest.fixture(scope="module")
def graph_db():
    return uniform_binary_database(8, density=0.35, seed=9)


@pytest.fixture(scope="module")
def sqlite_store(graph_db):
    store = SQLiteDatabase.from_annotated(graph_db)
    yield store
    store.close()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_backtracking_engine(benchmark, graph_db, name):
    query = WORKLOADS[name]
    result = benchmark(evaluate_backtracking, query, graph_db)
    assert isinstance(result, dict)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_hashjoin_engine(benchmark, graph_db, name):
    query = WORKLOADS[name]
    result = benchmark(evaluate_hashjoin, query, graph_db)
    assert result == evaluate_backtracking(query, graph_db)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_sqlite_engine(benchmark, graph_db, sqlite_store, name):
    query = WORKLOADS[name]
    result = benchmark(sqlite_store.evaluate, query)
    assert result == evaluate(query, graph_db)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_algebra_engine(benchmark, graph_db, name):
    from repro.algebra.compile import evaluate_via_algebra

    query = WORKLOADS[name]
    result = benchmark(evaluate_via_algebra, query, graph_db)
    assert result == evaluate(query, graph_db)


def test_engines_agree_on_all_workloads(benchmark, graph_db, sqlite_store):
    def check_all():
        agreements = 0
        for query in WORKLOADS.values():
            if sqlite_store.evaluate(query) == evaluate(query, graph_db):
                agreements += 1
        return agreements

    agreements = benchmark(check_all)
    assert agreements == len(WORKLOADS)
    banner("Engines agree on {}/{} workloads".format(agreements, len(WORKLOADS)))

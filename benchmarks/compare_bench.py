"""Benchmark-regression gate: diff a timed run against the baseline.

CI generates ``benchmark.json`` (pytest-benchmark's ``--benchmark-json``
artifact) and then runs::

    python benchmarks/compare_bench.py benchmark.json

which fails (exit 1) when any benchmark present in **both** the fresh
run and ``benchmarks/baseline.json`` slowed its median down by more
than the tolerance (default 35% — generous on purpose: shared CI
runners jitter, and the gate is after order-of-magnitude regressions,
not percent-level noise).  New benchmarks pass through and are
reported; benchmarks that disappeared are warned about but do not fail
the gate; benchmarks whose baseline median sits under
:data:`GATE_FLOOR_SECONDS` are reported but never gated (at
microsecond scale the 35% band is pure scheduler noise).

Refreshing the baseline (after an intentional perf change, or when the
benchmark set grows)::

    python -m pytest benchmarks/bench_incremental.py benchmarks/bench_aggregate.py \
        benchmarks/bench_hashjoin.py benchmarks/bench_sharded.py \
        benchmarks/bench_server.py benchmarks/bench_recovery.py \
        -q --benchmark-only --benchmark-json=benchmark.json
    python benchmarks/compare_bench.py --refresh benchmark.json

and commit the rewritten ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")
DEFAULT_TOLERANCE = 0.35

#: Benchmarks whose baseline median is below this many seconds are
#: reported but never gated: at microsecond scale a 35% swing is
#: scheduler jitter on a shared runner, not a regression the gate
#: should page anyone about.
GATE_FLOOR_SECONDS = 1e-3


def load_medians(path: str) -> Dict[str, float]:
    """``{fullname: median seconds}`` from a pytest-benchmark JSON file."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        entry["fullname"]: entry["stats"]["median"]
        for entry in payload["benchmarks"]
    }


def refresh_baseline(fresh_path: str, baseline_path: str, tolerance: float) -> int:
    """Rewrite the committed baseline from a fresh timed run."""
    medians = load_medians(fresh_path)
    with open(fresh_path) as handle:
        machine_info = json.load(handle).get("machine_info", {})
    payload = {
        "note": (
            "Median seconds per benchmark, written by "
            "`python benchmarks/compare_bench.py --refresh benchmark.json`. "
            "Medians are machine-dependent; refresh on the reference "
            "hardware after intentional performance changes."
        ),
        "machine": {
            key: machine_info.get(key)
            for key in ("machine", "processor", "system", "python_version")
        },
        "tolerance": tolerance,
        "benchmarks": {name: medians[name] for name in sorted(medians)},
    }
    with open(baseline_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        "baseline refreshed: {} benchmarks -> {}".format(
            len(medians), baseline_path
        )
    )
    return 0


def compare(fresh_path: str, baseline_path: str, tolerance: float) -> int:
    """Diff fresh medians against the baseline; 1 on regression."""
    fresh = load_medians(fresh_path)
    with open(baseline_path) as handle:
        baseline_payload = json.load(handle)
    baseline: Dict[str, float] = baseline_payload["benchmarks"]
    tolerance = baseline_payload.get("tolerance", tolerance)
    machine = baseline_payload.get("machine") or {}
    if machine:
        print(
            "baseline recorded on: {} {} (python {})\n"
            "(cross-machine comparisons drift; refresh the baseline from "
            "this machine's run if the gate misfires without a code "
            "change)\n".format(
                machine.get("system", "?"),
                machine.get("machine", "?"),
                machine.get("python_version", "?"),
            )
        )

    width = max((len(name) for name in set(fresh) | set(baseline)), default=20)
    header = "{:<{w}}  {:>12}  {:>12}  {:>8}  verdict".format(
        "benchmark", "baseline ms", "fresh ms", "ratio", w=width
    )
    print(header)
    print("-" * len(header))

    regressions = []
    for name in sorted(set(fresh) | set(baseline)):
        if name not in baseline:
            print(
                "{:<{w}}  {:>12}  {:>12.3f}  {:>8}  new (passes through)".format(
                    name, "-", fresh[name] * 1e3, "-", w=width
                )
            )
            continue
        if name not in fresh:
            print(
                "{:<{w}}  {:>12.3f}  {:>12}  {:>8}  missing from run (warn)".format(
                    name, baseline[name] * 1e3, "-", "-", w=width
                )
            )
            continue
        ratio = fresh[name] / baseline[name] if baseline[name] else float("inf")
        below_floor = baseline[name] < GATE_FLOOR_SECONDS
        slowed = ratio > 1.0 + tolerance and not below_floor
        if slowed:
            regressions.append((name, ratio))
        if below_floor:
            verdict = "below {:.0f}ms floor (informational)".format(
                GATE_FLOOR_SECONDS * 1e3
            )
        elif slowed:
            verdict = "REGRESSION (> {:.0f}% slower)".format(tolerance * 100)
        else:
            verdict = "ok"
        print(
            "{:<{w}}  {:>12.3f}  {:>12.3f}  {:>7.2f}x  {}".format(
                name,
                baseline[name] * 1e3,
                fresh[name] * 1e3,
                ratio,
                verdict,
                w=width,
            )
        )

    if regressions:
        print(
            "\n{} benchmark(s) regressed past the {:.0f}% gate:".format(
                len(regressions), tolerance * 100
            )
        )
        for name, ratio in regressions:
            print("  {}  ({:.2f}x the baseline median)".format(name, ratio))
        print(
            "If the slowdown is intentional, refresh the baseline "
            "(see benchmarks/compare_bench.py's docstring)."
        )
        return 1
    print("\nno regressions past the {:.0f}% gate".format(tolerance * 100))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Diff a pytest-benchmark JSON run against the "
        "committed baseline; exit 1 on >tolerance median slowdowns."
    )
    parser.add_argument("fresh", help="benchmark.json from --benchmark-json")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline file (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed median slowdown fraction when the baseline file "
        "does not pin one (default: 0.35)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite the baseline from the fresh run instead of comparing",
    )
    args = parser.parse_args(argv)
    if args.refresh:
        return refresh_baseline(args.fresh, args.baseline, args.tolerance)
    return compare(args.fresh, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())

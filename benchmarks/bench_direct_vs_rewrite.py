"""Experiment T5.1: direct core computation vs rewrite-then-evaluate.

Paper claim (Thm. 5.1): the core provenance of a tuple is computable
from its polynomial alone — in PTIME up to coefficients (part 1), and
exactly given D, t and Const(Q) (part 2).  This bench verifies the
agreement with MinProv-rewriting on the paper's instance and on a
larger synthetic workload, and compares the costs of the two routes:
the direct route does not pay the exponential rewriting price on every
tuple.
"""

from conftest import banner

from repro.db.generators import uniform_binary_database
from repro.direct.core_polynomial import core_polynomial_approx
from repro.direct.pipeline import core_provenance, core_provenance_table
from repro.engine.evaluate import evaluate, provenance_of_boolean
from repro.minimize.minprov import min_prov
from repro.paperdata import figure3_qhat, table6_database
from repro.query.parser import parse_query


def test_part1_ptime_transform(benchmark):
    q_hat = figure3_qhat()
    db = table6_database()
    polynomial = provenance_of_boolean(q_hat, db)
    approx = benchmark(core_polynomial_approx, polynomial)
    assert str(approx) == "s1 + 3*s2*s4*s5"


def test_part2_exact_direct_computation(benchmark):
    q_hat = figure3_qhat()
    db = table6_database()
    polynomial = provenance_of_boolean(q_hat, db)
    core = benchmark(core_provenance, polynomial, db, ())
    rewritten = provenance_of_boolean(min_prov(q_hat), db)
    assert core == rewritten
    banner("Thm. 5.1 — direct: {}  ==  rewrite+eval: {}".format(core, rewritten))


def test_direct_route_on_synthetic_workload(benchmark):
    """Core provenance for every tuple of a 40-edge two-hop view."""
    db = uniform_binary_database(7, density=0.4, seed=3)
    query = parse_query("ans(x, z) :- R(x, y), R(y, z)")
    results = evaluate(query, db)

    table = benchmark(core_provenance_table, results, db)
    assert set(table) == set(results)
    for output, polynomial in table.items():
        for monomial in polynomial.monomials():
            assert monomial.is_linear()


def test_rewrite_route_on_synthetic_workload(benchmark):
    """The same workload via MinProv + re-evaluation (the comparison
    point: rewriting pays the canonical-case blow-up once per query)."""
    db = uniform_binary_database(7, density=0.4, seed=3)
    query = parse_query("ans(x, z) :- R(x, y), R(y, z)")
    results = evaluate(query, db)

    def rewrite_and_eval():
        return evaluate(min_prov(query), db)

    rewritten = benchmark(rewrite_and_eval)
    direct = core_provenance_table(results, db)
    assert rewritten == direct
    banner(
        "Direct vs rewrite agree on all {} output tuples".format(len(direct))
    )

"""Experiment E4.2: canonical rewritings (Def. 4.1).

Regenerates the five adjuncts of Example 4.2 and measures how the
rewriting grows with the number of arguments (the Bell-number growth
underlying Thm. 4.10).
"""

from conftest import banner

from repro.db.generators import chain_query
from repro.hom.homomorphism import is_isomorphic
from repro.minimize.canonical import canonical_rewriting, possible_completions
from repro.paperdata.figures import example_4_2_query
from repro.query.parser import parse_query
from repro.query.terms import Constant
from repro.utils.partitions import bell_number


def test_example_4_2_five_adjuncts(benchmark):
    query = example_4_2_query()
    constants = [Constant("a"), Constant("b")]
    completions = benchmark(possible_completions, query, constants)
    assert len(completions) == 5
    expected = [
        "ans(v1, 'a') :- R(v1, 'a'), v1 != 'a', v1 != 'b'",
        "ans(v1, 'b') :- R(v1, 'b'), v1 != 'a', v1 != 'b'",
        "ans(v1, v2) :- R(v1, v2), v1 != v2, v1 != 'a', v1 != 'b', "
        "v2 != 'a', v2 != 'b'",
        "ans('b', 'a') :- R('b', 'a')",
        "ans('b', v1) :- R('b', v1), v1 != 'a', v1 != 'b'",
    ]
    for text in expected:
        assert any(is_isomorphic(c, parse_query(text)) for c in completions)
    banner("Example 4.2 — Can(Q, {a, b}) adjuncts")
    for completion in completions:
        print("   ", completion)


def test_canonical_growth_follows_bell_numbers(benchmark):
    """|Can(chain_k)| = B(k+1): the source of the EXPTIME bound."""

    def rewrite_chain_of(length):
        return canonical_rewriting(chain_query(length))

    rewriting = benchmark(rewrite_chain_of, 4)
    assert len(rewriting.adjuncts) == bell_number(5)
    banner("Canonical-rewriting growth (chain queries)")
    print("  {:>6} {:>10} {:>12}".format("atoms", "variables", "adjuncts"))
    for length in range(1, 5):
        adjuncts = len(canonical_rewriting(chain_query(length)).adjuncts)
        assert adjuncts == bell_number(length + 1)
        print("  {:>6} {:>10} {:>12}".format(length, length + 1, adjuncts))

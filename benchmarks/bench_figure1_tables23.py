"""Experiment T2/T3+F1: regenerate Tables 2-3 from Figure 1's queries.

Paper claim (Examples 2.13, 2.14, 2.18; Thm. 3.11): on the Table 2
database, ``Qunion`` yields ``s2*s3 + s1`` for (a) while the equivalent
``Qconj`` yields ``s2*s3 + s1*s1``; ``Qunion <_P Qconj``.
"""

from conftest import banner, show_polynomials

from repro.engine.evaluate import evaluate
from repro.order.query_order import compare_on_database
from repro.paperdata import figure1, table2_database, table3_expected
from repro.semiring.order import Ordering


def test_table3_regenerated_from_qunion(benchmark):
    fig = figure1()
    db = table2_database()
    result = benchmark(evaluate, fig.q_union, db)
    expected = table3_expected()
    assert result == expected
    banner("Table 3 — ans for Qunion on Table 2 (paper: s2*s3+s1 / s3*s2+s4)")
    show_polynomials(sorted(result.items()))


def test_example_2_14_qconj_provenance(benchmark):
    fig = figure1()
    db = table2_database()
    result = benchmark(evaluate, fig.q_conj, db)
    assert str(result[("a",)]) == "s1^2 + s2*s3"
    assert str(result[("b",)]) == "s2*s3 + s4^2"
    banner("Example 2.14 — ans for Qconj (paper: s2*s3+s1*s1 / s3*s2+s4*s4)")
    show_polynomials(sorted(result.items()))


def test_example_2_18_qunion_strictly_terser(benchmark):
    fig = figure1()
    db = table2_database()
    verdict = benchmark(compare_on_database, fig.q_union, fig.q_conj, db)
    assert verdict is Ordering.LESS
    banner("Example 2.18 — Qunion <_P Qconj on Table 2: {}".format(verdict))

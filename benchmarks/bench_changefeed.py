"""Changefeed fan-out cost versus subscriber count.

The claim under test: the :class:`SubscriptionHub`'s encode-once
design makes publishing one maintenance report to N subscribers an
*append* per subscriber, not an encode per subscriber — so fanning
out to 512 subscribers costs far less than 512 single-subscriber
encodes, and one :class:`ChangefeedEvent` object is shared by every
ring.

The hub is driven the way the serving tier drives it: a real
:class:`ViewRegistry` over a 10k-tuple database maintains the join
view ``V``, its per-apply :class:`MaintenanceReport` is captured, and
``hub.publish`` replays that report at synthetic (monotone) versions.

Timed for the JSON artifact (and the regression gate): publish with 1
subscriber and with 512 subscribers.
"""

import pytest

from conftest import banner

from repro.db.generators import random_database
from repro.incremental.delta import Delta
from repro.incremental.registry import ViewRegistry
from repro.query.parser import parse_program
from repro.server.subscriptions import SubscriptionHub

PROGRAM = "V(x, z) :- R(x, y), S(y, z)"
RELATIONS = {"R": 2, "S": 2}
DOMAIN = list(range(150))


@pytest.fixture(scope="module")
def report():
    """One real MaintenanceReport from a 10k-tuple maintained join.

    The delta inserts a hub row on the join key, so the view change
    carries many touched tuples — a representative encode, not a
    trivial one.
    """
    db = random_database(RELATIONS, DOMAIN, n_facts=10_000, seed=31)
    registry = ViewRegistry(parse_program(PROGRAM), db)
    captured = {}
    registry.add_observer(
        lambda version, rep: captured.update(version=version, report=rep)
    )
    registry.apply(
        Delta(inserts=[("R", ("hub", 0)), ("S", (0, "spoke"))])
    )
    assert not captured["report"].changes["V"].is_empty()
    return captured["version"], captured["report"]


def fanned_hub(subscribers, report_cursor):
    hub = SubscriptionHub(max_subscriptions=max(subscribers, 1))
    for _ in range(subscribers):
        hub.subscribe("V", False, report_cursor)
    return hub


def publisher(hub, version, report):
    """A closure that republishes ``report`` at fresh monotone cursors."""
    state = {"version": version}

    def publish():
        state["version"] += 1
        hub.publish(state["version"], report)

    return publish


def test_event_is_encoded_once_and_shared(report):
    """The acceptance criterion: one event object across 512 rings."""
    version, rep = report
    hub = fanned_hub(512, version)
    hub.publish(version + 1, rep)
    subs = list(hub._subscriptions.values())
    first = subs[0].ring[-1]
    assert all(sub.ring[-1] is first for sub in subs)
    assert hub.stats()["delivered_events"] == 0  # fan-out is not delivery
    banner(
        "fan-out: 1 encode shared by 512 rings ({} byte payload)".format(
            len(first.body)
        )
    )


def test_publish_one_subscriber(benchmark, report):
    version, rep = report
    hub = fanned_hub(1, version)
    benchmark(publisher(hub, version, rep))
    assert len(next(iter(hub._subscriptions.values())).ring) >= 1


def test_publish_512_subscribers(benchmark, report):
    version, rep = report
    hub = fanned_hub(512, version)
    benchmark(publisher(hub, version, rep))
    assert all(len(sub.ring) >= 1 for sub in hub._subscriptions.values())

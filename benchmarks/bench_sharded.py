"""Shard-parallel vs serial evaluation on a 10k-tuple join.

The claims under test: (1) on a two-way join over 10,000 annotated
tuples, a warm 4-shard :class:`~repro.session.QuerySession` (process
pool, columnar results in a shared-memory payload) beats the same
session pinned to a single shard by at least 1.5x — and the serial
hash-join engine by at least 2x — in wall-clock, while producing
*identical* provenance polynomials, as the cross-shard differential
suite demands; (2) the session amortizes partitioning, payload
shipping and planning, so steady-state evaluations measure join work,
not setup.

Both sharded contenders run through the same execution path (anchored
fragments, shard-local intern tables, columnar merge), so the
four-vs-one ratio isolates parallelism; the hash-join engine is the
end-to-end serial baseline the 2x tentpole target is measured against.
"""

import json
import os
import time

import pytest

from conftest import banner

from repro.config import EngineConfig
from repro.db.generators import random_database
from repro.engine.hashjoin import evaluate_hashjoin
from repro.obs.trace import tracing, tree_stage_names
from repro.query.parser import parse_query
from repro.session import QuerySession

QUERY = parse_query("ans(x, z) :- R(x, y), S(y, z)")
RELATIONS = {"R": 2, "S": 2}
DOMAIN = list(range(150))


def workload_db():
    """10k tuples split across the two join sides."""
    db = random_database(RELATIONS, DOMAIN, n_facts=10_000, seed=31)
    assert db.fact_count() >= 10_000
    return db


@pytest.fixture(scope="module")
def db():
    return workload_db()


def _session(db, shards, workers):
    session = QuerySession(
        db,
        EngineConfig(
            engine="sharded", shards=shards, workers=workers,
            broadcast_threshold=0,
        ),
    )
    session.evaluate(QUERY)  # warm: partitioning, pool, plans, intern
    return session


def _steady_state(session, rounds=3):
    """Best wall-clock of ``rounds`` re-evaluations on the warm session.

    ``refresh()`` drops the memoized results (so the join actually
    re-runs) but keeps the pool, the partitioning and the plan cache —
    the steady state of a refresh loop.
    """
    best = float("inf")
    for _ in range(rounds):
        session.refresh()
        start = time.perf_counter()
        session.evaluate(QUERY)
        best = min(best, time.perf_counter() - start)
    return best


def test_four_shards_beat_one_with_identical_polynomials(db):
    """The acceptance criterion: 4-shard >= 1.5x 1-shard on 10k tuples,
    polynomial-identical output (asserted unconditionally; the speedup
    needs hardware parallelism, so it is skipped on single-CPU runners
    where four workers time-slice one core)."""
    reference = evaluate_hashjoin(QUERY, db)
    with _session(db, shards=1, workers=1) as single:
        assert single.evaluate(QUERY) == reference  # identical polynomials
        single_shard = _steady_state(single)
    with _session(db, shards=4, workers=4) as four:
        assert four.evaluate(QUERY) == reference  # ... at every shard count
        four_shards = _steady_state(four)
    speedup = single_shard / four_shards
    banner(
        "10k-tuple join: 4 shards {:.2f}x vs 1 shard "
        "({:.0f} ms vs {:.0f} ms) on {} CPU(s)".format(
            speedup, four_shards * 1e3, single_shard * 1e3, os.cpu_count()
        )
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-CPU runner cannot demonstrate shard parallelism")
    assert speedup >= 1.5, speedup


def test_four_shards_beat_serial_hashjoin(db):
    """The columnar tentpole target: sharded(4) >= 2x the serial
    hash-join engine end to end.  The serial side re-plans, re-indexes
    and eagerly decodes every round; the warm session's columnar path
    amortizes exactly those stages (cached join indexes in the workers,
    vectorized counter-merge, lazy decode at the result boundary) —
    that amortization, times four cores, is where 2x comes from.
    Polynomial identity is asserted unconditionally; the ratio needs
    real cores, so it is skipped below four CPUs."""
    reference = evaluate_hashjoin(QUERY, db)  # also warms the intern table
    serial = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        evaluate_hashjoin(QUERY, db)
        serial = min(serial, time.perf_counter() - start)
    with _session(db, shards=4, workers=4) as four:
        assert four.evaluate(QUERY) == reference  # identical polynomials
        sharded = _steady_state(four)
    speedup = serial / sharded
    banner(
        "10k-tuple join: 4 shards {:.2f}x vs serial hashjoin "
        "({:.0f} ms vs {:.0f} ms) on {} CPU(s)".format(
            speedup, sharded * 1e3, serial * 1e3, os.cpu_count()
        )
    )
    if (os.cpu_count() or 1) < 4:
        pytest.skip("the 2x-vs-serial target needs four real cores")
    assert speedup >= 2.0, speedup


@pytest.fixture(scope="module")
def four_shard_session(db):
    with _session(db, shards=4, workers=4) as session:
        yield session


@pytest.fixture(scope="module")
def single_shard_session(db):
    with _session(db, shards=1, workers=1) as session:
        yield session


def test_sharded_four_shards(benchmark, four_shard_session):
    def run():
        four_shard_session.refresh()
        return four_shard_session.evaluate(QUERY)

    assert benchmark(run)


def test_sharded_single_shard(benchmark, single_shard_session):
    def run():
        single_shard_session.refresh()
        return single_shard_session.evaluate(QUERY)

    assert benchmark(run)


def test_hashjoin_serial_baseline(benchmark, db):
    assert benchmark(evaluate_hashjoin, QUERY, db)


# ----------------------------------------------------------------------
# Trace artifact: where does sharded wall-clock actually go?
# ----------------------------------------------------------------------
def _stage_totals(tree, totals=None):
    """Aggregate a trace tree into ``{stage: total_ms}``."""
    totals = {} if totals is None else totals
    totals[tree["name"]] = totals.get(tree["name"], 0.0) + tree["duration_ms"]
    for child in tree.get("children", ()):
        _stage_totals(child, totals)
    return totals


def test_trace_artifact_breaks_down_sharded_run(db):
    """Capture cold + steady span trees for 1 and 4 shards.

    Writes ``benchmarks/traces/sharded_10k.json`` — the committed
    evidence behind the ROADMAP's columnar-refactor item: the cold run
    shows payload shipping (``shard.ship``), the steady runs split into
    fan-out/execute (``join``) and cross-shard intern-merge
    (``shard.merge``).
    """
    artifact = {"query": "ans(x, z) :- R(x, y), S(y, z)", "facts": db.fact_count()}
    for shards in (1, 4):
        with QuerySession(
            db,
            EngineConfig(
                engine="sharded", shards=shards, workers=shards,
                broadcast_threshold=0,
            ),
        ) as session:
            with tracing("cold") as tracer:
                session.evaluate(QUERY)
            cold = tracer.tree()
            session.refresh()
            with tracing("steady") as tracer:
                session.evaluate(QUERY)
            steady = tracer.tree()
        for want in ("shard.refresh", "join", "shard.merge"):
            assert want in tree_stage_names(steady), (want, steady)
        artifact["shards_{}".format(shards)] = {
            "cold": cold,
            "steady": steady,
            "steady_stage_ms": {
                name: round(value, 3)
                for name, value in sorted(_stage_totals(steady).items())
            },
        }
    path = os.path.join(os.path.dirname(__file__), "traces", "sharded_10k.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    banner(
        "steady-state stage split (ms): 1 shard {} / 4 shards {}".format(
            artifact["shards_1"]["steady_stage_ms"],
            artifact["shards_4"]["steady_stage_ms"],
        )
    )

"""Experiments E3.2 / E3.4: homomorphisms vs containment; surjectivity.

Paper claims: Example 3.2 exhibits CQ≠ containment *without* a
homomorphism (so completion-based containment is necessary);
Example 3.4 shows plain homomorphisms do not order provenance — the
surjectivity requirement of Thm. 3.3 is essential.
"""

from conftest import banner

from repro.db.instance import AnnotatedDatabase
from repro.engine.evaluate import provenance_of_boolean
from repro.hom.containment import is_contained
from repro.hom.homomorphism import has_homomorphism, has_surjective_homomorphism
from repro.paperdata.figures import example_3_2_queries, example_3_4_queries
from repro.semiring.order import polynomial_le


def test_example_3_2_containment_without_homomorphism(benchmark):
    q, q_prime = example_3_2_queries()

    def decide():
        return is_contained(q, q_prime), has_homomorphism(q_prime, q)

    contained, hom_exists = benchmark(decide)
    assert contained and not hom_exists
    banner(
        "Example 3.2 — Q ⊆ Q' holds ({}) although no homomorphism "
        "Q' -> Q exists ({})".format(contained, hom_exists)
    )


def test_example_3_4_surjectivity_matters(benchmark):
    q, q_prime = example_3_4_queries()
    db = AnnotatedDatabase.from_rows({"R": [("a",)]})

    def witness():
        return (
            has_homomorphism(q_prime, q),
            has_surjective_homomorphism(q_prime, q),
            provenance_of_boolean(q, db),
            provenance_of_boolean(q_prime, db),
        )

    hom, surjective, p_q, p_qp = benchmark(witness)
    assert hom and not surjective
    assert str(p_q) == "s1^2" and str(p_qp) == "s1"
    assert not polynomial_le(p_q, p_qp)
    assert polynomial_le(p_qp, p_q)
    banner(
        "Example 3.4 — non-surjective hom gives no order: "
        "P(Q)={} vs P(Q')={}".format(p_q, p_qp)
    )


def test_homomorphism_search_scaling(benchmark):
    """Time the hom search on the Figure 2 pentagon (6 atoms).

    Note the search between the *variants* fails (S(x1) pins the cycle,
    so the disequality cannot be carried over) — that failure is the
    whole point of Thm. 3.5; here we time the successful self-search.
    """
    from repro.paperdata import figure2

    fig = figure2()
    assert not has_homomorphism(fig.q_no_pmin, fig.q_alt)
    result = benchmark(has_homomorphism, fig.q_no_pmin, fig.q_no_pmin)
    assert result

#!/usr/bin/env python
"""Boot `repro-prov serve` and drive a 1k+-connection asyncio load.

The CI ``serve`` / ``serve-async`` jobs' load harness, also runnable
locally::

    python scripts/serve_smoke.py [--connections 1000] [--requests 5]

Steps:

1. generate a seeded random database and write it as a CLI data file;
2. boot ``repro-prov serve`` (via ``python -m repro.cli``) on a free
   port in ``--server-mode`` (default ``async``), parsing the chosen
   port from its banner line;
3. **byte-identity phase** — boot a second server in the *other* mode
   on the same data and assert that every ``/query`` and ``/batch``
   response is byte-identical across the async tier, the threaded
   tier, and a direct in-process evaluation through the shared codec;
4. **load phase** — open ``--connections`` concurrent keep-alive
   connections from one asyncio client loop, hold them all open at
   once (on the async tier the server's own
   ``repro_server_open_connections`` gauge must account for them),
   then fire ``--requests`` requests per connection: ~1% of
   connections are updaters inserting unique tuples, ~5% are
   subscribe-shaped pollers re-reading ``/stats``, the rest rotate the
   query mix;
5. assert every response was a 200, that the per-endpoint request
   counters grew by exactly the load sent, and that the result cache
   served hits; print p50/p95/p99 per request kind;
6. **changefeed phase** — register ``--subscribers`` subscriptions on
   the maintained view ``V``, hold every feed open at once (SSE on the
   async tier, long-poll on the threaded tier), push
   ``--feed-updates`` updates and assert every subscriber received
   every event exactly once in cursor order, that replaying subscriber
   0's snapshot + deltas reproduces ``GET /v1/views/V`` byte-for-byte,
   and that the hub counted exactly ``subscribers x updates``
   deliveries with no evictions or resets; print fan-out p50/p95/p99
   (update response to event receipt).

``--json PATH`` writes the latency percentiles and counter totals as a
JSON artifact (the CI jobs upload it).  ``--bench-json PATH`` writes
the p99s in pytest-benchmark shape so
``benchmarks/compare_bench.py`` can gate them against
``benchmarks/baseline.json``.

Exit code 0 on success, 1 on any failed request, byte mismatch,
counter mismatch or a cold cache.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
    )

QUERIES = [
    "ans(x, z) :- R(x, y), S(y, z)",
    "ans(x) :- R(x, y)\nans(x) :- S(x, y)",
    "agg(x, count(*)) :- R(x, y)",
    "agg(sum(z)) :- R(x, y), S(y, z)",
]


def build_database():
    """The seeded 600-fact database the harness serves and oracles."""
    from repro.db.generators import random_database

    return random_database({"R": 2, "S": 2}, list(range(40)), n_facts=600, seed=17)


def write_database(db, path: str) -> None:
    """Write ``db`` in the CLI's data-file format."""
    payload = {
        relation: [
            {"row": list(row), "annotation": annotation}
            for row, annotation in db.facts(relation)
        ]
        for relation in sorted(db.relations())
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def expected_body(text: str, db, version: int) -> bytes:
    """The differential oracle: direct evaluation through the codec."""
    from repro.aggregate.evaluate import evaluate_aggregate
    from repro.engine.evaluate import evaluate
    from repro.query.aggregate import AggregateQuery
    from repro.query.parser import parse_query
    from repro.server.app import canonical_json, encode_results

    query = parse_query(text)
    aggregate = isinstance(query, AggregateQuery)
    direct = evaluate_aggregate(query, db) if aggregate else evaluate(query, db)
    return canonical_json({"version": version, **encode_results(direct, aggregate)})


def raise_fd_limit(target: int) -> None:
    """Lift RLIMIT_NOFILE toward ``target`` (harness + inherited server)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < target:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(target, hard), hard)
            )
    except (ValueError, OSError):
        pass


def boot_server(data: str, engine: str, mode: str, program: str = None):
    """Start ``repro-prov serve``; returns ``(process, host, port)``."""
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "-d",
        data,
        "--port",
        "0",
        "--engine",
        engine,
        "--server-mode",
        mode,
    ]
    if program:
        command += ["-p", program]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path)),
    )
    banner = process.stdout.readline()
    if "listening on http://" not in banner:
        stderr = process.stderr.read()
        process.terminate()
        process.wait(timeout=30)
        raise RuntimeError(
            "server failed to boot: {!r}\n{}".format(banner, stderr)
        )
    address = banner.split("http://", 1)[1].split()[0]
    host, port = address.rsplit(":", 1)
    return process, host, int(port)


def stop_server(process) -> None:
    process.terminate()
    process.wait(timeout=30)


# ----------------------------------------------------------------------
# A minimal asyncio HTTP/1.1 client (keep-alive, chunked decoding)
# ----------------------------------------------------------------------
async def http_request(reader, writer, method, path, body=None):
    """One request on an open connection; ``(status, body, closed)``."""
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        "{} {} HTTP/1.1\r\n"
        "Host: load\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: {}\r\n\r\n"
    ).format(method, path, len(payload))
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    status = int(line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionError("connection closed mid-headers")
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() == "chunked":
        chunks = []
        while True:
            size = int((await reader.readline()).strip(), 16)
            if size == 0:
                await reader.readline()  # the terminating CRLF
                break
            chunks.append(await reader.readexactly(size))
            await reader.readexactly(2)  # chunk CRLF
        response = b"".join(chunks)
    else:
        length = int(headers.get("content-length", "0"))
        response = await reader.readexactly(length) if length else b""
    closed = "close" in headers.get("connection", "").lower()
    return status, response, closed


async def fetch(host, port, method, path, body=None):
    """One request on a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        status, response, _closed = await http_request(
            reader, writer, method, path, body
        )
        return status, response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass


def fetch_sync(host, port, method, path, body=None):
    return asyncio.get_event_loop().run_until_complete(
        fetch(host, port, method, path, body)
    )


# ----------------------------------------------------------------------
# Phase 1: byte-identity differential across the two tiers + oracle
# ----------------------------------------------------------------------
def byte_identity_phase(db, data, engine, primary, other_mode, program) -> int:
    """Both tiers and the in-process oracle must agree byte for byte."""
    from repro.server.app import canonical_json

    host, port = primary
    secondary_process, shost, sport = boot_server(
        data, engine, other_mode, program
    )
    try:
        status, stats_a = fetch_sync(host, port, "GET", "/stats")
        assert status == 200
        status, stats_b = fetch_sync(shost, sport, "GET", "/stats")
        assert status == 200
        version = json.loads(stats_a)["db_version"]
        if json.loads(stats_b)["db_version"] != version:
            print("FAIL: the two tiers booted at different db versions", file=sys.stderr)
            return 1
        expected = {text: expected_body(text, db, version) for text in QUERIES}
        for text in QUERIES:
            status_a, body_a = fetch_sync(
                host, port, "POST", "/query", {"query": text}
            )
            status_b, body_b = fetch_sync(
                shost, sport, "POST", "/query", {"query": text}
            )
            if (status_a, status_b) != (200, 200):
                print(
                    "FAIL: /query answered {}/{} for {!r}".format(
                        status_a, status_b, text
                    ),
                    file=sys.stderr,
                )
                return 1
            if not (body_a == body_b == expected[text]):
                print(
                    "FAIL: byte mismatch for {!r} (async == threaded: {}, "
                    "== oracle: {})".format(
                        text, body_a == body_b, body_a == expected[text]
                    ),
                    file=sys.stderr,
                )
                return 1
        # The /v1 mount serves byte-identical bodies to the legacy one.
        for path in ("/query", "/v1/query"):
            status_v, body_v = fetch_sync(
                host, port, "POST", path, {"query": QUERIES[0]}
            )
            if status_v != 200 or body_v != expected[QUERIES[0]]:
                print(
                    "FAIL: {} disagrees with the legacy mount".format(path),
                    file=sys.stderr,
                )
                return 1
        batch_expected = canonical_json(
            {"results": [json.loads(expected[text]) for text in QUERIES]}
        )
        status_a, batch_a = fetch_sync(
            host, port, "POST", "/batch", {"queries": QUERIES}
        )
        status_b, batch_b = fetch_sync(
            shost, sport, "POST", "/batch", {"queries": QUERIES}
        )
        if not (
            status_a == status_b == 200
            and batch_a == batch_b == batch_expected
        ):
            print("FAIL: /batch bytes disagree across tiers", file=sys.stderr)
            return 1
        print(
            "byte-identity: {} queries + /batch identical across async, "
            "threaded and in-process evaluation".format(len(QUERIES))
        )
        return 0
    finally:
        stop_server(secondary_process)


# ----------------------------------------------------------------------
# Phase 2: the concurrent load
# ----------------------------------------------------------------------
def plan_request(cid: int, index: int):
    """``(kind, method, path, body)`` for one client request.

    ~1% of connections are updaters, ~5% subscribe-shaped pollers
    re-reading ``/stats``; everyone else rotates the query mix.
    """
    if cid % 100 == 0:
        return (
            "update",
            "POST",
            "/update",
            {
                "insert": {
                    "R": [
                        {
                            "row": ["u{}".format(cid), "w{}".format(index)],
                            "annotation": "u{}x{}".format(cid, index),
                        }
                    ]
                }
            },
        )
    if cid % 20 == 1:
        return ("stats", "GET", "/stats", None)
    return ("query", "POST", "/query", {"query": QUERIES[(cid + index) % len(QUERIES)]})


async def run_load(host, port, connections, requests, check_gauge):
    """Open every connection, hold them concurrently, fire the mix."""
    arrived = 0
    all_connected = asyncio.Event()
    go = asyncio.Event()
    samples = []  # (kind, status, seconds)
    failures = []

    async def client(cid):
        nonlocal arrived
        reader = writer = None
        for attempt in range(5):
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                await asyncio.sleep(0.05 * (attempt + 1))
        arrived += 1
        if arrived >= connections:
            all_connected.set()
        if writer is None:
            failures.append((cid, "connect", "could not connect"))
            return
        try:
            await asyncio.wait_for(go.wait(), 120)
            for index in range(requests):
                kind, method, path, body = plan_request(cid, index)
                start = time.perf_counter()
                try:
                    status, response, closed = await asyncio.wait_for(
                        http_request(reader, writer, method, path, body), 60
                    )
                except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as error:
                    failures.append((cid, path, repr(error)))
                    return
                samples.append((kind, status, time.perf_counter() - start))
                if status != 200:
                    failures.append((cid, path, status, response[:200]))
                if closed:
                    writer.close()
                    reader, writer = await asyncio.open_connection(host, port)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass

    tasks = [asyncio.ensure_future(client(cid)) for cid in range(connections)]
    await asyncio.wait_for(all_connected.wait(), 120)
    gauge = None
    if check_gauge and not failures:
        # Every client is connected and parked: the server's own gauge
        # must account for all of them at once.  A completed client-side
        # connect only means the TCP handshake finished — the server's
        # accept loop may still be draining its backlog — so poll until
        # the gauge catches up (or give up after the deadline and report
        # whatever it last said).
        deadline = time.perf_counter() + 30
        while True:
            _status, text = await fetch(host, port, "GET", "/metrics")
            for line in text.decode("utf-8").splitlines():
                if line.startswith("repro_server_open_connections"):
                    gauge = float(line.rpartition(" ")[2])
            if gauge is not None and gauge >= connections:
                break
            if time.perf_counter() > deadline:
                break
            await asyncio.sleep(0.25)
    go.set()
    results = await asyncio.gather(*tasks, return_exceptions=True)
    for cid, result in enumerate(results):
        if isinstance(result, Exception):
            failures.append((cid, "client", repr(result)))
    return samples, failures, gauge


def percentile(ordered, q):
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def latency_summary(samples):
    """``{kind: {count, p50, p95, p99}}`` from load samples."""
    by_kind = {}
    for kind, _status, seconds in samples:
        by_kind.setdefault(kind, []).append(seconds)
    summary = {}
    for kind, values in sorted(by_kind.items()):
        values.sort()
        summary[kind] = {
            "count": len(values),
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
            "p99": percentile(values, 0.99),
        }
    return summary


# ----------------------------------------------------------------------
# Phase 3: the changefeed fan-out (N held-open subscribers)
# ----------------------------------------------------------------------
async def follow_changefeed(
    host, port, mode, sub, updates, bucket, connected
):
    """Collect ``updates`` events for one subscriber; tier-aware.

    Appends ``(payload, receipt_seconds)`` pairs to ``bucket``.  On the
    async tier this holds one SSE response open; on the threaded tier
    it long-polls on one keep-alive connection, resuming via cursor.
    """
    sub_id = sub["subscription"]
    cursor = sub["cursor"]
    if mode == "async":
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                "GET /v1/changefeed/{}?cursor={} HTTP/1.1\r\n"
                "Host: feed\r\n\r\n".format(sub_id, cursor).encode("latin-1")
            )
            await writer.drain()
            line = await reader.readline()
            status = int(line.split()[1])
            if status != 200:
                raise RuntimeError(
                    "changefeed answered {} for {}".format(status, sub_id)
                )
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
            connected()
            frame = []
            while len(bucket) < updates:
                line = await asyncio.wait_for(reader.readline(), 120)
                if not line:
                    raise RuntimeError("stream closed early")
                line = line.strip()
                if not line:  # blank line ends one SSE frame
                    stamp = time.perf_counter()
                    for field in frame:
                        if field.startswith(b"data:"):
                            bucket.append((json.loads(field[5:]), stamp))
                    frame = []
                else:
                    frame.append(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        return
    reader, writer = await asyncio.open_connection(host, port)
    try:
        connected()
        while len(bucket) < updates:
            status, body, closed = await asyncio.wait_for(
                http_request(
                    reader,
                    writer,
                    "GET",
                    "/v1/changefeed/{}?cursor={}&wait=5".format(
                        sub_id, cursor
                    ),
                ),
                120,
            )
            stamp = time.perf_counter()
            if status != 200:
                raise RuntimeError(
                    "changefeed poll answered {}: {!r}".format(
                        status, body[:200]
                    )
                )
            payload = json.loads(body)
            for event in payload["events"]:
                bucket.append((event, stamp))
            cursor = payload["cursor"]
            if closed:
                writer.close()
                reader, writer = await asyncio.open_connection(host, port)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass


async def run_changefeed(host, port, mode, subscribers, updates):
    """Subscribe N times, hold every feed open, fire updates, account.

    Returns ``(receipts, versions, update_done, subs)`` where
    ``receipts[sub_id]`` is the (payload, receipt time) list,
    ``versions`` the db versions the updates produced (in order) and
    ``update_done[version]`` the moment each ``/update`` response
    landed.
    """
    subs = []
    for _ in range(subscribers):
        status, body = await fetch(
            host, port, "POST", "/v1/subscribe", {"view": "V"}
        )
        if status != 200:
            raise RuntimeError(
                "POST /v1/subscribe answered {}: {!r}".format(
                    status, body[:200]
                )
            )
        subs.append(json.loads(body))
    receipts = {sub["subscription"]: [] for sub in subs}
    arrived = 0
    all_connected = asyncio.Event()

    def connected():
        nonlocal arrived
        arrived += 1
        if arrived >= subscribers:
            all_connected.set()

    tasks = [
        asyncio.ensure_future(
            follow_changefeed(
                host,
                port,
                mode,
                sub,
                updates,
                receipts[sub["subscription"]],
                connected,
            )
        )
        for sub in subs
    ]
    try:
        await asyncio.wait_for(all_connected.wait(), 60)
        versions = []
        update_done = {}
        for index in range(updates):
            status, body = await fetch(
                host,
                port,
                "POST",
                "/v1/update",
                {
                    "insert": {
                        "R": [["cf", "cft{}".format(index)]],
                        "S": [["cft{}".format(index), index]],
                    }
                },
            )
            if status != 200:
                raise RuntimeError(
                    "/v1/update answered {}: {!r}".format(status, body[:200])
                )
            version = json.loads(body)["version"]
            update_done[version] = time.perf_counter()
            versions.append(version)
        await asyncio.wait_for(
            asyncio.gather(*tasks), 120
        )  # every subscriber saw every event
    finally:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        for sub in subs:
            await fetch(
                host, port, "DELETE", "/v1/changefeed/" + sub["subscription"]
            )
    return receipts, versions, update_done, subs


def changefeed_phase(host, port, mode, subscribers, updates) -> "tuple":
    """Drive the fan-out and verify its three promises.

    1. **exactly once, in order** — every subscriber's received cursor
       sequence equals the update versions;
    2. **replay fidelity** — folding subscriber 0's deltas into its
       snapshot reproduces ``GET /v1/views/V`` byte-for-byte through
       the encoders;
    3. **liveness accounting** — the hub reports no evictions/resets
       and exactly ``subscribers x updates`` delivered events for this
       phase.

    Returns ``(exit_code, fanout_latency_summary)``.
    """
    from repro.io import apply_changefeed_event, changefeed_event_from_dict
    from repro.server.app import canonical_json, encode_results

    status, raw = fetch_sync(host, port, "GET", "/v1/stats")
    delivered_before = json.loads(raw)["subscriptions"]["delivered_events"]
    receipts, versions, update_done, subs = asyncio.get_event_loop().run_until_complete(
        run_changefeed(host, port, mode, subscribers, updates)
    )
    for sub_id, bucket in receipts.items():
        cursors = [payload["cursor"] for payload, _stamp in bucket]
        if cursors != versions:
            print(
                "FAIL: subscriber {} saw cursors {} but the updates "
                "produced {}".format(sub_id, cursors, versions),
                file=sys.stderr,
            )
            return 1, {}

    # Replay check: subscriber 0's snapshot + its deltas == the view.
    probe = subs[0]
    state = {}
    apply_changefeed_event(
        state,
        changefeed_event_from_dict(
            {
                "cursor": probe["cursor"],
                "view": "V",
                "aggregate": False,
                "event": "reset",
                "state": probe["snapshot"]["results"],
            }
        ),
    )
    for payload, _stamp in receipts[probe["subscription"]]:
        apply_changefeed_event(state, changefeed_event_from_dict(payload))
    status, raw = fetch_sync(host, port, "GET", "/v1/views/V")
    if status != 200:
        print("FAIL: GET /v1/views/V answered {}".format(status), file=sys.stderr)
        return 1, {}
    served = json.loads(raw)
    replayed = canonical_json(encode_results(state, False))
    direct = canonical_json(
        {"kind": served["kind"], "results": served["results"]}
    )
    if replayed != direct:
        print(
            "FAIL: replaying the changefeed diverged from /v1/views/V",
            file=sys.stderr,
        )
        return 1, {}

    status, raw = fetch_sync(host, port, "GET", "/v1/stats")
    hub = json.loads(raw)["subscriptions"]
    expected_delivered = subscribers * updates
    delivered = hub["delivered_events"] - delivered_before
    if delivered != expected_delivered or hub["evictions"] or hub["resets"]:
        print(
            "FAIL: hub accounting off: delivered {} (want {}), "
            "evictions {}, resets {}".format(
                delivered, expected_delivered, hub["evictions"], hub["resets"]
            ),
            file=sys.stderr,
        )
        return 1, {}

    # Fan-out latency: receipt time minus the moment the producing
    # /update response landed, matched by cursor.  Publishing happens
    # inside the apply (before the update response), so a fast consumer
    # can legitimately beat the updater — clamp those to zero.
    fanout = []
    for bucket in receipts.values():
        for payload, stamp in bucket:
            fanout.append(max(0.0, stamp - update_done[payload["cursor"]]))
    fanout.sort()
    summary = {
        "count": len(fanout),
        "p50": percentile(fanout, 0.50),
        "p95": percentile(fanout, 0.95),
        "p99": percentile(fanout, 0.99),
    }
    print(
        "changefeed: {} subscribers x {} updates delivered exactly once "
        "in cursor order; replay == /v1/views/V; fan-out p50={:.2f}ms "
        "p95={:.2f}ms p99={:.2f}ms".format(
            subscribers,
            updates,
            summary["p50"] * 1e3,
            summary["p95"] * 1e3,
            summary["p99"] * 1e3,
        )
    )
    return 0, summary


# ----------------------------------------------------------------------
# Metrics exposition helpers (strict: the format is the contract)
# ----------------------------------------------------------------------
def parse_exposition(text: str) -> dict:
    """``{metric{labels}: value}`` from a Prometheus text exposition."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _space, value = line.rpartition(" ")
        if not name:
            raise ValueError("unparseable sample line: {!r}".format(line))
        samples[name] = float(value)
    return samples


def counter_total(samples: dict, name: str, **labels) -> float:
    """Sum every series of ``name`` whose labels include ``labels``."""
    total = 0.0
    for key, value in samples.items():
        if not key.startswith(name):
            continue
        if all('{}="{}"'.format(k, v) in key for k, v in labels.items()):
            total += value
    return total


def scrape_counters(host, port):
    status, raw = fetch_sync(host, port, "GET", "/metrics")
    if status != 200:
        raise RuntimeError("GET /metrics answered {}".format(status))
    samples = parse_exposition(raw.decode("utf-8"))
    return {
        endpoint: counter_total(
            samples, "repro_http_requests_total", endpoint=endpoint
        )
        for endpoint in ("/query", "/update", "/stats")
    }


def write_bench_json(path, latency, mode):
    """The p99s in pytest-benchmark shape, for compare_bench.py."""
    payload = {
        "benchmarks": [
            {
                "fullname": "serve_load::{}_{}_p99".format(mode, kind),
                "stats": {"median": summary["p99"]},
            }
            for kind, summary in sorted(latency.items())
        ],
        "machine_info": {
            "machine": platform.machine(),
            "processor": platform.processor(),
            "system": platform.system(),
            "python_version": platform.python_version(),
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def main(argv=None) -> int:
    """Run the load harness; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--connections", type=int, default=1000)
    parser.add_argument("--requests", type=int, default=5)
    parser.add_argument(
        "--subscribers",
        type=int,
        default=200,
        help="held-open changefeed subscribers in the fan-out phase "
        "(default: 200; 0 skips the phase)",
    )
    parser.add_argument(
        "--feed-updates",
        type=int,
        default=4,
        help="updates pushed through the changefeed phase (default: 4)",
    )
    parser.add_argument("--engine", default="hashjoin", choices=("hashjoin", "sharded"))
    parser.add_argument(
        "--server-mode", default="async", choices=("async", "threaded")
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write latency percentiles and counter totals as JSON",
    )
    parser.add_argument(
        "--bench-json",
        metavar="PATH",
        help="write p99 latencies in pytest-benchmark shape "
        "(for benchmarks/compare_bench.py)",
    )
    args = parser.parse_args(argv)

    raise_fd_limit(args.connections * 2 + 256)
    asyncio.set_event_loop(asyncio.new_event_loop())
    db = build_database()
    with tempfile.TemporaryDirectory() as tmp:
        data = os.path.join(tmp, "data.json")
        write_database(db, data)
        program = os.path.join(tmp, "views.dl")
        with open(program, "w") as handle:
            handle.write("V(x, z) :- R(x, y), S(y, z)\n")
        process, host, port = boot_server(
            data, args.engine, args.server_mode, program
        )
        try:
            print(
                "server up at {}:{} ({} engine, {} mode)".format(
                    host, port, args.engine, args.server_mode
                )
            )
            other = "threaded" if args.server_mode == "async" else "async"
            code = byte_identity_phase(
                db, data, args.engine, (host, port), other, program
            )
            if code:
                return code

            before = scrape_counters(host, port)
            started = time.perf_counter()
            samples, failures, gauge = asyncio.get_event_loop().run_until_complete(
                run_load(
                    host,
                    port,
                    args.connections,
                    args.requests,
                    check_gauge=args.server_mode == "async",
                )
            )
            elapsed = time.perf_counter() - started
            expected_total = args.connections * args.requests
            print(
                "{} connections x {} requests: {} completed in {:.1f}s "
                "({:.0f} req/s)".format(
                    args.connections,
                    args.requests,
                    len(samples),
                    elapsed,
                    len(samples) / elapsed if elapsed else 0.0,
                )
            )
            if failures:
                print(
                    "FAIL: {} failed requests/connections: {}".format(
                        len(failures), failures[:10]
                    ),
                    file=sys.stderr,
                )
                return 1
            if len(samples) != expected_total:
                print("FAIL: load clients died early", file=sys.stderr)
                return 1
            if args.server_mode == "async":
                if gauge is None or gauge < args.connections:
                    print(
                        "FAIL: open-connections gauge saw {} while {} "
                        "clients were parked connected".format(
                            gauge, args.connections
                        ),
                        file=sys.stderr,
                    )
                    return 1
                print(
                    "concurrency: server gauge reported {:.0f} open "
                    "connections at the barrier".format(gauge)
                )

            after = scrape_counters(host, port)
            sent = {
                endpoint: sum(
                    1
                    for kind, _status, _seconds in samples
                    if kind == label
                )
                for endpoint, label in (
                    ("/query", "query"),
                    ("/update", "update"),
                    ("/stats", "stats"),
                )
            }
            counted = {
                endpoint: after[endpoint] - before[endpoint]
                for endpoint in sent
            }
            if counted != {k: float(v) for k, v in sent.items()}:
                print(
                    "FAIL: request counters {} disagree with the load "
                    "{}".format(counted, sent),
                    file=sys.stderr,
                )
                return 1

            status, raw = fetch_sync(host, port, "GET", "/stats")
            stats = json.loads(raw)
            cache = stats["cache"]
            print(
                "cache: {} hits, {} dedup, {} misses, hit rate {:.1%}; "
                "db version {}".format(
                    cache["hits"],
                    cache["dedup_hits"],
                    cache["misses"],
                    cache["hit_rate"],
                    stats["db_version"],
                )
            )
            if cache["hit_rate"] <= 0:
                print("FAIL: the result cache served no hits", file=sys.stderr)
                return 1

            latency = latency_summary(samples)
            if args.subscribers > 0:
                code, fanout = changefeed_phase(
                    host,
                    port,
                    args.server_mode,
                    args.subscribers,
                    args.feed_updates,
                )
                if code:
                    return code
                latency["changefeed_fanout"] = fanout
            for kind, summary in latency.items():
                print(
                    "latency {} (n={}): p50={:.2f}ms p95={:.2f}ms "
                    "p99={:.2f}ms".format(
                        kind,
                        summary["count"],
                        summary["p50"] * 1e3,
                        summary["p95"] * 1e3,
                        summary["p99"] * 1e3,
                    )
                )
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(
                        {
                            "engine": args.engine,
                            "server_mode": args.server_mode,
                            "connections": args.connections,
                            "requests_per_connection": args.requests,
                            "elapsed_seconds": elapsed,
                            "latency_seconds": latency,
                            "request_counters": counted,
                            "cache": cache,
                            "open_connections_gauge": gauge,
                        },
                        handle,
                        indent=2,
                        sort_keys=True,
                    )
                print("wrote {}".format(args.json))
            if args.bench_json:
                write_bench_json(args.bench_json, latency, args.server_mode)
                print("wrote {}".format(args.bench_json))
            print("load harness passed")
            return 0
        finally:
            stop_server(process)


if __name__ == "__main__":
    sys.exit(main())

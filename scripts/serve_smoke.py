#!/usr/bin/env python
"""Boot `repro-prov serve` and fire a threaded mixed query/update load.

The CI `serve` job's smoke check, also runnable locally::

    python scripts/serve_smoke.py [--threads 16] [--requests 50]

Steps:

1. generate a seeded random database and write it as a CLI data file;
2. boot ``repro-prov serve`` (via ``python -m repro.cli``) on a free
   port, parsing the chosen port from its banner line;
3. run ``--threads`` workers, each firing ``--requests`` requests —
   a rotating mix of ``/query`` texts with every tenth request an
   ``/update`` inserting a unique tuple;
4. assert every response was a 200 and, from ``/stats``, that the
   result cache actually served hits (hit rate > 0).

Exit code 0 on success, 1 on any failed request or a cold cache.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
from http.client import HTTPConnection

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
    )

QUERIES = [
    "ans(x, z) :- R(x, y), S(y, z)",
    "ans(x) :- R(x, y)\nans(x) :- S(x, y)",
    "agg(x, count(*)) :- R(x, y)",
    "agg(sum(z)) :- R(x, y), S(y, z)",
]


def write_database(path: str) -> None:
    """A seeded 600-fact database in the CLI's data-file format."""
    from repro.db.generators import random_database

    db = random_database({"R": 2, "S": 2}, list(range(40)), n_facts=600, seed=17)
    payload = {
        relation: [
            {"row": list(row), "annotation": annotation}
            for row, annotation in db.facts(relation)
        ]
        for relation in sorted(db.relations())
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def worker(host: str, port: int, thread_id: int, requests: int, outcomes: list):
    """One load thread: keep-alive connection, mixed query/update."""
    conn = HTTPConnection(host, port, timeout=60)
    try:
        for index in range(requests):
            if index % 10 == 9:
                path, body = "/update", {
                    "insert": {
                        "R": [
                            {
                                "row": ["u{}".format(thread_id), "w{}".format(index)],
                                "annotation": "u{}x{}".format(thread_id, index),
                            }
                        ]
                    }
                }
            else:
                path = "/query"
                body = {"query": QUERIES[(thread_id + index) % len(QUERIES)]}
            try:
                conn.request("POST", path, body=json.dumps(body))
                response = conn.getresponse()
                response.read()
                outcomes.append((path, response.status))
            except OSError as error:
                outcomes.append((path, repr(error)))
                return
    finally:
        conn.close()


def main(argv=None) -> int:
    """Run the smoke load; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--engine", default="hashjoin", choices=("hashjoin", "sharded"))
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        data = os.path.join(tmp, "data.json")
        write_database(data)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "-d",
                data,
                "--port",
                "0",
                "--engine",
                args.engine,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path)),
        )
        try:
            banner = process.stdout.readline()
            if "listening on http://" not in banner:
                print("server failed to boot: {!r}".format(banner), file=sys.stderr)
                print(process.stderr.read(), file=sys.stderr)
                return 1
            address = banner.split("http://", 1)[1].split()[0]
            host, port = address.rsplit(":", 1)
            print("server up at {} ({} engine)".format(address, args.engine))

            outcomes: list = []
            threads = [
                threading.Thread(
                    target=worker,
                    args=(host, int(port), thread_id, args.requests, outcomes),
                )
                for thread_id in range(args.threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            expected = args.threads * args.requests
            failures = [entry for entry in outcomes if entry[1] != 200]
            print(
                "{} requests, {} completed, {} non-200".format(
                    expected, len(outcomes), len(failures)
                )
            )
            conn = HTTPConnection(host, int(port), timeout=60)
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
            conn.close()
            cache = stats["cache"]
            print(
                "cache: {} hits, {} dedup, {} misses, hit rate {:.1%}; "
                "db version {}".format(
                    cache["hits"],
                    cache["dedup_hits"],
                    cache["misses"],
                    cache["hit_rate"],
                    stats["db_version"],
                )
            )
            if failures:
                print("FAIL: non-200 responses: {}".format(failures[:10]), file=sys.stderr)
                return 1
            if len(outcomes) != expected:
                print("FAIL: load threads died early", file=sys.stderr)
                return 1
            if cache["hit_rate"] <= 0:
                print("FAIL: the result cache served no hits", file=sys.stderr)
                return 1
            print("smoke load passed")
            return 0
        finally:
            process.terminate()
            process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Boot `repro-prov serve` and fire a threaded mixed query/update load.

The CI `serve` job's smoke check, also runnable locally::

    python scripts/serve_smoke.py [--threads 16] [--requests 50]

Steps:

1. generate a seeded random database and write it as a CLI data file;
2. boot ``repro-prov serve`` (via ``python -m repro.cli``) on a free
   port, parsing the chosen port from its banner line;
3. run ``--threads`` workers, each firing ``--requests`` requests —
   a rotating mix of ``/query`` texts with every tenth request an
   ``/update`` inserting a unique tuple — while a scraper thread polls
   ``GET /metrics`` mid-load (each scrape must be a 200 that parses as
   Prometheus exposition);
4. assert every response was a 200; from the final ``/metrics`` scrape,
   that the per-endpoint request counters account for every request the
   workers sent; and from ``/stats``, that the result cache actually
   served hits (hit rate > 0) and the latency percentiles are sane.

``--json PATH`` writes the latency percentiles and counter totals as a
JSON artifact (the CI serve job uploads it).

Exit code 0 on success, 1 on any failed request, counter mismatch or a
cold cache.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
from http.client import HTTPConnection

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
    )

QUERIES = [
    "ans(x, z) :- R(x, y), S(y, z)",
    "ans(x) :- R(x, y)\nans(x) :- S(x, y)",
    "agg(x, count(*)) :- R(x, y)",
    "agg(sum(z)) :- R(x, y), S(y, z)",
]


def write_database(path: str) -> None:
    """A seeded 600-fact database in the CLI's data-file format."""
    from repro.db.generators import random_database

    db = random_database({"R": 2, "S": 2}, list(range(40)), n_facts=600, seed=17)
    payload = {
        relation: [
            {"row": list(row), "annotation": annotation}
            for row, annotation in db.facts(relation)
        ]
        for relation in sorted(db.relations())
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def worker(host: str, port: int, thread_id: int, requests: int, outcomes: list):
    """One load thread: keep-alive connection, mixed query/update."""
    conn = HTTPConnection(host, port, timeout=60)
    try:
        for index in range(requests):
            if index % 10 == 9:
                path, body = "/update", {
                    "insert": {
                        "R": [
                            {
                                "row": ["u{}".format(thread_id), "w{}".format(index)],
                                "annotation": "u{}x{}".format(thread_id, index),
                            }
                        ]
                    }
                }
            else:
                path = "/query"
                body = {"query": QUERIES[(thread_id + index) % len(QUERIES)]}
            try:
                conn.request("POST", path, body=json.dumps(body))
                response = conn.getresponse()
                response.read()
                outcomes.append((path, response.status))
            except OSError as error:
                outcomes.append((path, repr(error)))
                return
    finally:
        conn.close()


def scrape_metrics(host: str, port: int) -> str:
    """One ``GET /metrics`` scrape; raises on a non-200."""
    conn = HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        if response.status != 200:
            raise RuntimeError(
                "GET /metrics answered {}: {!r}".format(response.status, body)
            )
        return body
    finally:
        conn.close()


def parse_exposition(text: str) -> dict:
    """``{metric{labels}: value}`` from a Prometheus text exposition.

    A deliberately strict parser: any sample line that does not split
    into ``name[{labels}] value`` with a float value fails the smoke
    run — the format is the contract ``/metrics`` promises.
    """
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _space, value = line.rpartition(" ")
        if not name:
            raise ValueError("unparseable sample line: {!r}".format(line))
        samples[name] = float(value)
    return samples


def counter_total(samples: dict, name: str, **labels) -> float:
    """Sum every series of ``name`` whose labels include ``labels``."""
    total = 0.0
    for key, value in samples.items():
        if not key.startswith(name):
            continue
        if all('{}="{}"'.format(k, v) in key for k, v in labels.items()):
            total += value
    return total


def metrics_scraper(host: str, port: int, stop: threading.Event, scrapes: list):
    """Poll /metrics until told to stop, recording each parsed scrape."""
    while not stop.is_set():
        try:
            scrapes.append(parse_exposition(scrape_metrics(host, port)))
        except Exception as error:  # noqa: BLE001 - reported by main
            scrapes.append(error)
            return
        stop.wait(0.05)


def main(argv=None) -> int:
    """Run the smoke load; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--engine", default="hashjoin", choices=("hashjoin", "sharded"))
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write latency percentiles and counter totals as JSON",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        data = os.path.join(tmp, "data.json")
        write_database(data)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "-d",
                data,
                "--port",
                "0",
                "--engine",
                args.engine,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path)),
        )
        try:
            banner = process.stdout.readline()
            if "listening on http://" not in banner:
                print("server failed to boot: {!r}".format(banner), file=sys.stderr)
                print(process.stderr.read(), file=sys.stderr)
                return 1
            address = banner.split("http://", 1)[1].split()[0]
            host, port = address.rsplit(":", 1)
            print("server up at {} ({} engine)".format(address, args.engine))

            outcomes: list = []
            threads = [
                threading.Thread(
                    target=worker,
                    args=(host, int(port), thread_id, args.requests, outcomes),
                )
                for thread_id in range(args.threads)
            ]
            stop = threading.Event()
            scrapes: list = []
            scraper = threading.Thread(
                target=metrics_scraper, args=(host, int(port), stop, scrapes)
            )
            scraper.start()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stop.set()
            scraper.join()

            expected = args.threads * args.requests
            failures = [entry for entry in outcomes if entry[1] != 200]
            print(
                "{} requests, {} completed, {} non-200".format(
                    expected, len(outcomes), len(failures)
                )
            )
            conn = HTTPConnection(host, int(port), timeout=60)
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
            conn.close()
            cache = stats["cache"]
            print(
                "cache: {} hits, {} dedup, {} misses, hit rate {:.1%}; "
                "db version {}".format(
                    cache["hits"],
                    cache["dedup_hits"],
                    cache["misses"],
                    cache["hit_rate"],
                    stats["db_version"],
                )
            )
            if failures:
                print("FAIL: non-200 responses: {}".format(failures[:10]), file=sys.stderr)
                return 1
            if len(outcomes) != expected:
                print("FAIL: load threads died early", file=sys.stderr)
                return 1
            if cache["hit_rate"] <= 0:
                print("FAIL: the result cache served no hits", file=sys.stderr)
                return 1

            errors = [entry for entry in scrapes if isinstance(entry, Exception)]
            if errors:
                print(
                    "FAIL: mid-load /metrics scrape: {!r}".format(errors[0]),
                    file=sys.stderr,
                )
                return 1
            if not scrapes:
                print("FAIL: the scraper never reached /metrics", file=sys.stderr)
                return 1
            final = parse_exposition(scrape_metrics(host, int(port)))
            queries_sent = sum(1 for path, _status in outcomes if path == "/query")
            updates_sent = sum(1 for path, _status in outcomes if path == "/update")
            counted = {
                "/query": counter_total(
                    final, "repro_http_requests_total", endpoint="/query"
                ),
                "/update": counter_total(
                    final, "repro_http_requests_total", endpoint="/update"
                ),
            }
            print(
                "metrics: {} scrapes mid-load; counters /query={:.0f} "
                "/update={:.0f}".format(
                    len(scrapes), counted["/query"], counted["/update"]
                )
            )
            if counted["/query"] != queries_sent or counted["/update"] != updates_sent:
                print(
                    "FAIL: request counters disagree with the load "
                    "(sent {} queries / {} updates)".format(
                        queries_sent, updates_sent
                    ),
                    file=sys.stderr,
                )
                return 1
            latency = stats.get("latency", {})
            for endpoint, percentiles in sorted(latency.items()):
                print(
                    "latency {}: p50={:.2f}ms p95={:.2f}ms p99={:.2f}ms".format(
                        endpoint,
                        (percentiles["p50"] or 0) * 1e3,
                        (percentiles["p95"] or 0) * 1e3,
                        (percentiles["p99"] or 0) * 1e3,
                    )
                )
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(
                        {
                            "engine": args.engine,
                            "threads": args.threads,
                            "requests_per_thread": args.requests,
                            "latency_seconds": latency,
                            "request_counters": counted,
                            "cache": cache,
                            "metrics_scrapes": len(scrapes),
                        },
                        handle,
                        indent=2,
                        sort_keys=True,
                    )
                print("wrote {}".format(args.json))
            print("smoke load passed")
            return 0
        finally:
            process.terminate()
            process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
